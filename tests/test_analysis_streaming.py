"""Tests for the streaming sweep analysis, figures and report pipeline.

Covers ``repro.analysis.streaming`` (constant-memory group-by
aggregation), ``repro.analysis.figures`` (deterministic SVG renderer),
``repro.analysis.report`` (self-contained HTML) and the ``repro
analyze`` CLI — including the slow-marked bounded-memory guarantee over
a 100k-row file.
"""

from __future__ import annotations

import gzip
import json
import math
import tracemalloc
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.figures import (
    FigureArtifact,
    build_charts,
    matplotlib_available,
    render_chart_svg,
    render_figures,
    sequential_color,
    write_figures,
)
from repro.analysis.report import render_html_report
from repro.analysis.streaming import (
    MAX_FAILURE_DETAILS,
    MAX_TRACKED_ROUNDS,
    RoundAccumulator,
    StreamingMoments,
    analysis_table,
    analyze_sweep_rows,
)
from repro.cli import main
from repro.io.jsonl import dump_row, iter_jsonl, write_jsonl
from repro.sweep.executors import ROW_SCHEMA_VERSION


def make_row(
    index,
    axes,
    *,
    final=0.5,
    best=None,
    loss=1.0,
    rounds=2,
    network=None,
    trace=None,
    accuracies=None,
    delivery_trace=None,
):
    """Synthetic current-schema sweep row with the documented shape."""
    summary = {
        "final_accuracy": final,
        "best_accuracy": best if best is not None else final,
        "final_loss": loss,
        "rounds": rounds,
    }
    if network is not None:
        summary["network"] = network
    if trace is not None:
        summary["trace"] = trace
    history = {}
    if accuracies is not None:
        history["records"] = [
            {"round_index": i, "accuracy": acc}
            for i, acc in enumerate(accuracies)
        ]
    if delivery_trace is not None:
        history["delivery_trace"] = delivery_trace
    cell_id = "/".join(f"{k}={v}" for k, v in axes.items())
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": index,
        "cell_id": cell_id,
        "axes": dict(axes),
        "config": {},
        "summary": summary,
        "history": history,
    }


def make_error_row(index, axes, exception="RuntimeError: boom"):
    cell_id = "/".join(f"{k}={v}" for k, v in axes.items())
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": index,
        "cell_id": cell_id,
        "axes": dict(axes),
        "config": {},
        "error": {"schema": 1, "exception": exception, "traceback": [],
                  "attempts": 1},
    }


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        moments = StreamingMoments()
        for value in values:
            moments.update(float(value))
        assert moments.count == 200
        assert moments.mean == pytest.approx(values.mean())
        assert moments.variance == pytest.approx(values.var())
        assert moments.std == pytest.approx(values.std())
        assert moments.minimum == values.min()
        assert moments.maximum == values.max()
        assert moments.total == pytest.approx(values.sum())

    def test_skips_non_finite(self):
        moments = StreamingMoments()
        for value in (1.0, float("nan"), None, float("inf"), 3.0):
            moments.update(value)
        assert moments.count == 2
        assert moments.skipped == 3
        assert moments.mean == pytest.approx(2.0)

    def test_empty(self):
        moments = StreamingMoments()
        assert math.isnan(moments.variance)
        assert moments.to_json()["mean"] is None

    def test_single_observation(self):
        moments = StreamingMoments()
        moments.update(0.25)
        assert moments.variance == 0.0
        assert moments.to_json()["std"] == 0.0


class TestRoundAccumulator:
    def test_series(self):
        acc = RoundAccumulator()
        acc.update(0, 0.2)
        acc.update(0, 0.4)
        acc.update(1, 0.6)
        assert acc.rounds == 2
        assert acc.series("mean") == pytest.approx([0.3, 0.6])
        assert acc.series("min") == pytest.approx([0.2, 0.6])
        assert acc.series("max") == pytest.approx([0.4, 0.6])
        with pytest.raises(ValueError):
            acc.series("median")

    def test_gap_rounds_are_nan(self):
        acc = RoundAccumulator()
        acc.update(2, 0.5)
        series = acc.series("mean")
        assert math.isnan(series[0]) and math.isnan(series[1])
        assert series[2] == 0.5

    def test_truncation_counted_not_stored(self):
        acc = RoundAccumulator()
        acc.update(MAX_TRACKED_ROUNDS + 5, 0.5)
        acc.update(-1, 0.5)
        assert acc.rounds == 0
        assert acc.truncated_rounds == 1


class TestAnalyzeSweepRows:
    def test_groups_by_every_axis_by_default(self):
        rows = [
            make_row(0, {"a": "x", "b": "1"}),
            make_row(1, {"a": "x", "b": "2"}),
            make_row(2, {"a": "y", "b": "1"}),
        ]
        analysis = analyze_sweep_rows(rows)
        assert analysis.cells == 3
        assert len(analysis.groups) == 3
        assert analysis.group_by == ["a", "b"]

    def test_group_by_subset_aggregates(self):
        rows = [
            make_row(0, {"a": "x", "b": "1"}, final=0.2),
            make_row(1, {"a": "x", "b": "2"}, final=0.4),
            make_row(2, {"a": "y", "b": "1"}, final=0.8),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        assert len(analysis.groups) == 2
        group = analysis.groups[("x",)]
        assert group.cells == 2
        assert group.metrics["final_accuracy"].mean == pytest.approx(0.3)
        assert analysis.group_label(("x",)) == "a=x"

    def test_unknown_group_by_axis_raises(self):
        rows = [make_row(0, {"a": "x"})]
        with pytest.raises(ValueError, match="not an axis"):
            analyze_sweep_rows(rows, group_by=["nope"])

    def test_rows_predating_an_axis_group_under_placeholder(self):
        """Stale-schema tolerance: grouping by an axis older rows lack.

        A config field that became a sweep axis later (``rng_mode``) is
        absent from archived rows; those rows group under '-' instead of
        aborting the pass or rendering an invisible blank.
        """
        rows = [
            make_row(0, {"scheduler": "partial"}, final=0.4),
            make_row(1, {"scheduler": "partial", "rng_mode": "vectorized"},
                     final=0.6),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["rng_mode"])
        assert set(analysis.groups) == {("-",), ("vectorized",)}
        assert analysis.group_label(("-",)) == "rng_mode=-"
        table = analysis_table(analysis)
        assert "rng_mode=-" in table and "rng_mode=vectorized" in table

    def test_summary_table_renders_dash_for_missing_axis(self):
        from repro.analysis.reporting import sweep_summary_table

        rows = [
            make_row(0, {"scheduler": "partial"}),
            make_row(1, {"scheduler": "partial", "rng_mode": "vectorized"}),
        ]
        table = sweep_summary_table(rows, axis_names=["scheduler", "rng_mode"])
        lines = table.splitlines()
        assert any("partial" in line and " - " in f" {line} " for line in lines), table
        assert any("vectorized" in line for line in lines)

    def test_error_rows_tallied_never_trusted(self):
        rows = [
            make_row(0, {"a": "x"}, final=0.5),
            make_error_row(1, {"a": "x"}),
        ]
        analysis = analyze_sweep_rows(rows)
        group = analysis.groups[("x",)]
        assert analysis.failed == 1 and group.failed == 1
        assert group.cells == 2
        # The error row contributed to no metric.
        assert group.metrics["final_accuracy"].count == 1
        assert analysis.failures == [("a=x", "RuntimeError: boom")]

    def test_failure_listing_capped_count_exact(self):
        rows = [
            make_error_row(i, {"a": str(i)})
            for i in range(MAX_FAILURE_DETAILS + 7)
        ]
        analysis = analyze_sweep_rows(rows, group_by=[])
        assert analysis.failed == MAX_FAILURE_DETAILS + 7
        assert len(analysis.failures) == MAX_FAILURE_DETAILS

    def test_stale_and_malformed_rows_skipped(self):
        rows = [
            make_row(0, {"a": "x"}),
            {"schema": ROW_SCHEMA_VERSION - 1, "axes": {"a": "y"}},
            {"schema": ROW_SCHEMA_VERSION, "cell_id": "no-axes"},
        ]
        analysis = analyze_sweep_rows(rows)
        assert analysis.rows_read == 3
        assert analysis.cells == 1
        assert analysis.stale_rows == 2

    def test_non_finite_metrics_skipped_not_poisoning(self):
        rows = [
            make_row(0, {"a": "x"}, final=0.5, loss=None),
            make_row(1, {"a": "x"}, final=None, loss=2.0),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        group = analysis.groups[("x",)]
        assert group.metrics["final_accuracy"].count == 1
        assert group.metrics["final_accuracy"].skipped == 1
        assert group.metrics["final_accuracy"].mean == pytest.approx(0.5)

    def test_delivery_and_trace_metrics(self):
        rows = [
            make_row(
                0, {"a": "x"},
                network={"sent": 8, "delivered": 6},
                trace={"rounds": 2, "worst_deliv": 0.5, "late": 3},
            ),
            make_row(
                1, {"a": "x"},
                network={"sent": 0, "delivered": 0},
                trace={"rounds": 2, "worst_deliv": None, "late": 0},
            ),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        group = analysis.groups[("x",)]
        assert analysis.has_delivery
        assert group.delivery["delivery_rate"].count == 1  # zero-sent skipped
        assert group.delivery["worst_deliv"].minimum == 0.5
        assert group.delivery["late"].total == 3.0

    def test_classification_tally(self):
        converging = list(np.linspace(0.1, 0.9, 20))
        stagnant = [0.1] * 20
        rows = [
            make_row(0, {"a": "x"}, accuracies=converging),
            make_row(1, {"a": "x"}, accuracies=stagnant),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        tally = analysis.groups[("x",)].classifications
        assert tally == {"converging": 1, "stagnant": 1}
        no_classify = analyze_sweep_rows(rows, group_by=["a"], classify=False)
        assert no_classify.groups[("x",)].classifications == {}

    def test_curves_and_heatmap_accumulation(self):
        trace = [
            {"round": 10, "sent": 4, "delivered": 4, "delayed": 0},
            {"round": 11, "sent": 4, "delivered": 2, "delayed": 2},
        ]
        rows = [
            make_row(0, {"a": "x"}, accuracies=[0.1, 0.3],
                     delivery_trace=trace),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        group = analysis.groups[("x",)]
        assert analysis.has_trace
        assert group.accuracy_curve.series("mean") == pytest.approx([0.1, 0.3])
        # Trace rounds re-based on the first entry: columns 0 and 1.
        assert group.round_delivery.series("min") == pytest.approx([1.0, 0.5])
        assert group.round_late.series("mean") == pytest.approx([0.0, 2.0])

    def test_reads_path_and_gzip(self, tmp_path):
        rows = [make_row(i, {"a": str(i % 2)}) for i in range(4)]
        plain = tmp_path / "rows.jsonl"
        write_jsonl(plain, rows)
        zipped = tmp_path / "rows.jsonl.gz"
        with gzip.open(zipped, "wt", encoding="utf-8") as handle:
            for row in rows:
                handle.write(dump_row(row) + "\n")
        from_plain = analyze_sweep_rows(plain, group_by=["a"])
        from_gzip = analyze_sweep_rows(zipped, group_by=["a"])
        assert from_plain.to_json() == from_gzip.to_json()
        assert list(iter_jsonl(zipped)) == list(iter_jsonl(plain))

    def test_json_deterministic(self):
        rows = [make_row(i, {"a": str(i % 2)}, final=0.1 * i) for i in range(6)]
        first = json.dumps(analyze_sweep_rows(rows).to_json(), sort_keys=True)
        second = json.dumps(analyze_sweep_rows(rows).to_json(), sort_keys=True)
        assert first == second


class TestAnalysisTable:
    def test_renders_groups_and_summary(self):
        rows = [
            make_row(0, {"a": "x"}, final=0.2),
            make_row(1, {"a": "y"}, final=0.8),
            make_error_row(2, {"a": "y"}),
        ]
        table = analysis_table(analyze_sweep_rows(rows, group_by=["a"]))
        assert "a=x" in table and "a=y" in table
        assert "3 cell(s) in 2 group(s); 1 failed" in table

    def test_nan_delivery_renders_dash(self):
        rows = [
            make_row(
                0, {"a": "x"},
                network={"sent": 0, "delivered": 0},
                trace={"rounds": 1, "worst_deliv": None, "late": 0},
            ),
        ]
        table = analysis_table(analyze_sweep_rows(rows, group_by=["a"]))
        assert "nan" not in table
        assert "-" in table

    def test_empty(self):
        assert analysis_table(analyze_sweep_rows([])) == "(no sweep rows)"


def analysis_with_figures():
    trace = [
        {"round": 0, "sent": 4, "delivered": 4, "delayed": 0},
        {"round": 1, "sent": 4, "delivered": 3, "delayed": 1},
    ]
    rows = [
        make_row(
            i, {"a": group, "b": str(i % 2)},
            final=0.1 * (i + 1),
            accuracies=[0.05 * (i + 1), 0.1 * (i + 1)],
            delivery_trace=trace,
        )
        for i, group in enumerate(["x", "x", "y", "y"])
    ]
    return analyze_sweep_rows(rows, group_by=["a", "b"])


class TestFigures:
    def test_build_charts_covers_all_kinds(self):
        charts = build_charts(analysis_with_figures())
        names = [chart.name for chart in charts]
        assert names == [
            "accuracy_curves",
            "final_accuracy",
            "delivery_worst_heatmap",
            "delivery_late_heatmap",
        ]

    def test_svg_renders_parse_and_are_deterministic(self):
        analysis = analysis_with_figures()
        for chart in build_charts(analysis):
            svg = render_chart_svg(chart)
            assert svg == render_chart_svg(chart)
            root = ET.fromstring(svg)
            assert root.tag.endswith("svg")
            assert float(root.get("width")) > 0

    def test_render_figures_svg_artifacts(self):
        artifacts = render_figures(analysis_with_figures(), backend="svg")
        assert len(artifacts) == 4
        for artifact in artifacts:
            assert isinstance(artifact, FigureArtifact)
            assert artifact.mime == "image/svg+xml"
            assert len(artifact.data) > 200
            assert artifact.data_uri().startswith(
                "data:image/svg+xml;base64,"
            )

    def test_no_figures_without_histories(self):
        rows = [make_row(0, {"a": "x"})]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        charts = build_charts(analysis)
        # No embedded records or traces: only the final-accuracy chart
        # (built from summary metrics) remains.
        assert [chart.name for chart in charts] == ["final_accuracy"]

    def test_series_capped_with_note_never_cycled(self):
        rows = [
            make_row(i, {"a": f"g{i:02d}"}, accuracies=[0.1, 0.2])
            for i in range(11)
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        chart = build_charts(analysis)[0]
        assert chart.name == "accuracy_curves"
        assert len(chart.series) == 8
        assert "+3 more group(s)" in chart.note
        svg = render_chart_svg(chart)
        assert "+3 more group(s)" in svg

    def test_backend_validation(self):
        analysis = analysis_with_figures()
        with pytest.raises(ValueError, match="unknown figure backend"):
            render_figures(analysis, backend="gnuplot")
        if not matplotlib_available():
            with pytest.raises(ValueError, match="matplotlib"):
                render_figures(analysis, backend="mpl")
        else:  # pragma: no cover - container has no matplotlib
            artifacts = render_figures(analysis, backend="mpl")
            assert all(a.mime == "image/png" for a in artifacts)

    def test_write_figures(self, tmp_path):
        artifacts = render_figures(analysis_with_figures(), backend="svg")
        paths = write_figures(artifacts, tmp_path / "figs")
        assert len(paths) == 4
        for path in paths:
            assert path.suffix == ".svg"
            assert path.stat().st_size > 0

    def test_sequential_ramp_monotone_single_hue(self):
        # Light → dark: perceived lightness must strictly decrease.
        def luma(color):
            r, g, b = (int(color[i : i + 2], 16) for i in (1, 3, 5))
            return 0.2126 * r + 0.7152 * g + 0.0722 * b

        samples = [sequential_color(t / 10) for t in range(11)]
        lumas = [luma(color) for color in samples]
        assert all(a > b for a, b in zip(lumas, lumas[1:]))


class TestHtmlReport:
    def test_self_contained_and_deterministic(self):
        analysis = analysis_with_figures()
        figures = render_figures(analysis, backend="svg")
        html = render_html_report(analysis, figures, source="rows.jsonl")
        assert html == render_html_report(analysis, figures,
                                          source="rows.jsonl")
        assert html.count("data:image/svg+xml;base64,") == 4
        assert "<script" not in html
        assert 'href="http' not in html and 'src="http' not in html
        assert "rows.jsonl" in html

    def test_escapes_untrusted_text(self):
        rows = [
            make_error_row(
                0, {"a": "<script>alert(1)</script>"},
                exception="ValueError: <b>&nasty</b>",
            )
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        html = render_html_report(analysis)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
        assert "&lt;b&gt;" in html

    def test_failed_cells_listed(self):
        rows = [
            make_row(0, {"a": "x"}),
            make_error_row(1, {"a": "y"}, exception="RuntimeError: kaput"),
        ]
        analysis = analyze_sweep_rows(rows, group_by=["a"])
        html = render_html_report(analysis)
        assert "Failed cells" in html
        assert "kaput" in html

    def test_empty_analysis(self):
        html = render_html_report(analyze_sweep_rows([]))
        assert "No current-schema rows" in html


class TestAnalyzeCli:
    @staticmethod
    def _write_rows(tmp_path, count=4):
        rows = [
            make_row(
                i, {"a": "xy"[i % 2], "b": str(i // 2)},
                final=0.1 * (i + 1), accuracies=[0.1, 0.2],
                delivery_trace=[
                    {"round": 0, "sent": 2, "delivered": 2, "delayed": 0}
                ],
            )
            for i in range(count)
        ]
        path = tmp_path / "rows.jsonl"
        write_jsonl(path, rows)
        return path

    def test_table_format(self, capsys, tmp_path):
        path = self._write_rows(tmp_path)
        assert main(["analyze", str(path), "--group-by", "a"]) == 0
        out = capsys.readouterr().out
        assert "a=x" in out and "a=y" in out
        assert "4 cell(s) in 2 group(s)" in out

    def test_json_format(self, capsys, tmp_path):
        path = self._write_rows(tmp_path)
        assert main(["analyze", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 4
        assert payload["group_by"] == ["a", "b"]

    def test_html_format_with_figures(self, capsys, tmp_path):
        path = self._write_rows(tmp_path)
        report = tmp_path / "report.html"
        figs = tmp_path / "figs"
        code = main([
            "analyze", str(path), "--format", "html",
            "--output", str(report), "--figures", str(figs),
            "--figure-backend", "svg",
        ])
        assert code == 0
        html = report.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("data:image/svg+xml;base64,") >= 2
        assert sorted(p.suffix for p in figs.iterdir()) == [".svg"] * 4

    def test_missing_file_errors(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_group_by_errors(self, capsys, tmp_path):
        path = self._write_rows(tmp_path)
        assert main(["analyze", str(path), "--group-by", "bogus"]) == 2
        assert "not an axis" in capsys.readouterr().err

    def test_spec_pins_axis_order(self, capsys, tmp_path):
        # A spec whose grid axis order disagrees with sorted-key order.
        spec = {
            "base": {
                "attack": None, "num_byzantine": 0, "num_clients": 4,
                "rounds": 1, "num_samples": 40, "batch_size": 8,
                "mlp_hidden": [8, 4], "seed": 5,
            },
            "axes": {"seed": [1, 2], "heterogeneity": ["uniform"]},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        rows = [
            make_row(i, {"seed": str(s), "heterogeneity": "uniform"})
            for i, s in enumerate([1, 2])
        ]
        path = tmp_path / "rows.jsonl"
        write_jsonl(path, rows)
        assert main([
            "analyze", str(path), "--spec", str(spec_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axis_names"] == ["seed", "heterogeneity"]


@pytest.mark.slow
class TestBoundedMemory:
    def test_100k_rows_constant_memory(self, tmp_path):
        """Streaming analysis of a ≥100k-row file stays in bounded memory.

        The file itself is tens of MB; the analysis must hold only the
        per-group accumulators.  tracemalloc measures allocations during
        the pass — the bound (8 MB) is far below the file size and far
        above the accumulator footprint, so it fails loudly on any
        accidental materialisation of the row list.
        """
        path = tmp_path / "big.jsonl"
        count = 100_000
        with path.open("w", encoding="utf-8") as handle:
            for i in range(count):
                row = make_row(
                    i, {"a": "abcd"[i % 4], "b": str(i % 2)},
                    final=(i % 100) / 100.0,
                    accuracies=[(i % 7) / 10.0, (i % 11) / 11.0],
                    delivery_trace=[
                        {"round": 0, "sent": 4, "delivered": 3, "delayed": 1},
                    ],
                )
                handle.write(dump_row(row) + "\n")
        assert path.stat().st_size > 20 * 1024 * 1024

        tracemalloc.start()
        analysis = analyze_sweep_rows(path)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert analysis.cells == count
        assert len(analysis.groups) == 4  # i%4 and i%2 are correlated
        assert peak < 8 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"
