"""The benchmark baseline drift guard (``benchmarks/check_baselines.py``).

The guard compares fresh ``BENCH_*.json`` headline metrics against the
committed baselines in ``benchmarks/baselines/`` and fails CI on a >30%
regression — but only when the two artifacts carry the *same* build
fingerprint; cross-machine timings are warn-only.  These tests pin the
headline extraction for both artifact shapes in the suite and the
fail / warn / ignore decision table.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _harness import artifact_headlines, compare_to_baseline  # noqa: E402
import check_baselines  # noqa: E402

BUILD_A = {"numpy_version": "2.0.0", "cpu_count": 8}
BUILD_B = {"numpy_version": "2.1.0", "cpu_count": 4}


def cases_payload(rps, *, build=BUILD_A, rounds=3):
    """A minimal cases-style artifact (message plane / rng modes shape)."""
    return {
        "benchmark": "rng_modes",
        "build": dict(build),
        "smoke": False,
        "cases": [
            {
                "label": "partial(delay=2)",
                "rng_mode": mode,
                "n": 1024,
                "d": 256,
                "rounds": rounds,
                "rounds_per_sec": value,
            }
            for mode, value in rps.items()
        ],
    }


class TestHeadlineExtraction:
    def test_cases_shape_keys_exclude_rounds(self):
        fast = cases_payload({"scalar": 0.5, "vectorized": 2.0}, rounds=3)
        slow = cases_payload({"scalar": 0.5, "vectorized": 2.0}, rounds=30)
        # rounds/sec is per-round already: a smoke run and a full run of
        # the same case must land on the same headline key.
        assert artifact_headlines(fast) == artifact_headlines(slow)
        assert set(artifact_headlines(fast)) == {
            "case:partial(delay=2)|rng_mode=scalar|n=1024|d=256",
            "case:partial(delay=2)|rng_mode=vectorized|n=1024|d=256",
        }

    def test_headline_dict_shape(self):
        payload = {
            "benchmark": "subset_kernels",
            "build": dict(BUILD_A),
            "headline": {"geomedian_speedup": 5.9, "d": 64},
            "fastpath": {"fastpath_speedup": 16.7, "n": 16},
        }
        assert artifact_headlines(payload) == {
            "headline:geomedian_speedup": 5.9,
            "fastpath:fastpath_speedup": 16.7,
        }

    def test_committed_baselines_yield_headlines(self):
        baseline_dir = Path(check_baselines.BASELINE_DIR)
        for path in sorted(baseline_dir.glob("BENCH_*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert artifact_headlines(payload), (
                f"{path.name} produced no comparable headlines — the "
                f"drift guard would silently skip it"
            )


class TestComparison:
    def test_within_budget_passes(self):
        base = cases_payload({"scalar": 1.0, "vectorized": 4.0})
        fresh = cases_payload({"scalar": 0.8, "vectorized": 3.2})  # -20%
        report = compare_to_baseline(fresh, base)
        assert not report["failures"]
        assert not report["warnings"]

    def test_regression_fails_on_same_build(self):
        base = cases_payload({"scalar": 1.0, "vectorized": 4.0})
        fresh = cases_payload({"scalar": 1.0, "vectorized": 2.0})  # -50%
        report = compare_to_baseline(fresh, base)
        assert len(report["failures"]) == 1
        assert "vectorized" in report["failures"][0]

    def test_regression_warns_on_different_build(self):
        base = cases_payload({"vectorized": 4.0}, build=BUILD_A)
        fresh = cases_payload({"vectorized": 2.0}, build=BUILD_B)
        report = compare_to_baseline(fresh, base)
        assert not report["failures"]
        # Two warnings: the fingerprint note and the demoted regression.
        assert any("fingerprints differ" in w for w in report["warnings"])
        assert any("regression budget" in w for w in report["warnings"])

    def test_one_sided_headlines_are_informational(self):
        base = cases_payload({"scalar": 1.0, "vectorized": 4.0})
        fresh = cases_payload({"vectorized": 4.0})  # smoke subset
        report = compare_to_baseline(fresh, base)
        assert not report["failures"]
        assert any("one side only" in line for line in report["info"])

    def test_custom_budget(self):
        base = cases_payload({"vectorized": 4.0})
        fresh = cases_payload({"vectorized": 3.5})  # -12.5%
        assert not compare_to_baseline(fresh, base)["failures"]
        tight = compare_to_baseline(fresh, base, max_regression=0.10)
        assert tight["failures"]


class TestCli:
    def _write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_exit_codes(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(baselines / "BENCH_x.json",
                    cases_payload({"vectorized": 4.0}))
        fresh_ok = self._write(tmp_path / "BENCH_x.json",
                               cases_payload({"vectorized": 3.9}))
        args = ["--baseline-dir", str(baselines)]
        assert check_baselines.main([str(fresh_ok)] + args) == 0
        self._write(fresh_ok, cases_payload({"vectorized": 1.0}))
        assert check_baselines.main([str(fresh_ok)] + args) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "drift check FAILED" in out

    def test_missing_files_are_skipped(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        # No baseline counterpart: skipped, not failed.
        fresh = self._write(tmp_path / "BENCH_new.json",
                            cases_payload({"vectorized": 1.0}))
        args = ["--baseline-dir", str(baselines)]
        assert check_baselines.main([str(fresh)] + args) == 0
        # Fresh artifact missing entirely (bench crashed): skipped too —
        # the bench's own smoke gate is the failure signal for that.
        assert check_baselines.main(
            [str(tmp_path / "BENCH_absent.json")] + args
        ) == 0
        out = capsys.readouterr().out
        assert "skipped" in out
