"""Tests for the Byzantine attack models."""

import numpy as np
import pytest

from repro.byzantine.base import AttackContext
from repro.byzantine.crash import CrashAttack
from repro.byzantine.label_flip import LabelFlipAttack, flip_labels
from repro.byzantine.magnitude import MagnitudeAttack
from repro.byzantine.omniscient import OppositeOfMeanAttack
from repro.byzantine.partition import PartitionAttack
from repro.byzantine.random_noise import GaussianNoiseAttack, RandomVectorAttack
from repro.byzantine.registry import available_attacks, make_attack
from repro.byzantine.sign_flip import SignFlipAttack


def make_context(rng, own=None, honest_count=5, d=4, node=9, round_index=0):
    honest = {i: rng.normal(size=d) for i in range(honest_count)}
    return AttackContext(
        node=node,
        round_index=round_index,
        own_vector=own,
        honest_vectors=honest,
        rng=rng,
    )


class TestAttackContext:
    def test_dimension_from_own_vector(self, rng):
        ctx = make_context(rng, own=np.zeros(6), d=6)
        assert ctx.dimension == 6

    def test_dimension_from_honest(self, rng):
        ctx = make_context(rng, own=None, d=3)
        assert ctx.dimension == 3

    def test_dimension_without_vectors_raises(self, rng):
        ctx = AttackContext(node=0, round_index=0, own_vector=None, honest_vectors={}, rng=rng)
        with pytest.raises(ValueError):
            _ = ctx.dimension

    def test_honest_matrix_sorted_by_id(self, rng):
        ctx = make_context(rng, d=2, honest_count=3)
        mat = ctx.honest_matrix()
        assert mat.shape == (3, 2)
        np.testing.assert_allclose(mat[0], ctx.honest_vectors[0])

    def test_honest_matrix_empty_raises(self, rng):
        ctx = AttackContext(node=0, round_index=0, own_vector=np.zeros(2), honest_vectors={}, rng=rng)
        with pytest.raises(ValueError):
            ctx.honest_matrix()


class TestSignFlip:
    def test_flips_own_gradient(self, rng):
        own = np.array([1.0, -2.0, 3.0])
        out = SignFlipAttack().corrupt(make_context(rng, own=own, d=3))
        np.testing.assert_allclose(out, -own)

    def test_scale(self, rng):
        own = np.ones(3)
        out = SignFlipAttack(scale=5.0).corrupt(make_context(rng, own=own, d=3))
        np.testing.assert_allclose(out, -5.0 * own)

    def test_falls_back_to_honest_mean(self, rng):
        ctx = make_context(rng, own=None, d=3)
        out = SignFlipAttack().corrupt(ctx)
        np.testing.assert_allclose(out, -ctx.honest_matrix().mean(axis=0))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SignFlipAttack(scale=0.0)

    def test_no_recipient_restriction(self, rng):
        assert SignFlipAttack().recipients(make_context(rng, own=np.ones(2), d=2)) is None


class TestCrash:
    def test_silent_from_round_zero(self, rng):
        assert CrashAttack().corrupt(make_context(rng, own=np.ones(2), d=2)) is None

    def test_honest_before_crash_round(self, rng):
        attack = CrashAttack(crash_round=3)
        ctx = make_context(rng, own=np.array([1.0, 2.0]), d=2, round_index=1)
        np.testing.assert_allclose(attack.corrupt(ctx), [1.0, 2.0])

    def test_silent_after_crash_round(self, rng):
        attack = CrashAttack(crash_round=3)
        ctx = make_context(rng, own=np.ones(2), d=2, round_index=5)
        assert attack.corrupt(ctx) is None

    def test_invalid_crash_round(self):
        with pytest.raises(ValueError):
            CrashAttack(crash_round=-1)


class TestNoiseAttacks:
    def test_gaussian_noise_changes_vector(self, rng):
        own = np.ones(8)
        out = GaussianNoiseAttack(sigma=10.0).corrupt(make_context(rng, own=own, d=8))
        assert out.shape == (8,)
        assert np.linalg.norm(out - own) > 0.0

    def test_gaussian_noise_zero_sigma_is_identity(self, rng):
        own = np.ones(4)
        out = GaussianNoiseAttack(sigma=0.0).corrupt(make_context(rng, own=own, d=4))
        np.testing.assert_allclose(out, own)

    def test_random_vector_within_amplitude(self, rng):
        out = RandomVectorAttack(amplitude=2.0).corrupt(make_context(rng, d=6))
        assert out.shape == (6,)
        assert np.all(np.abs(out) <= 2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianNoiseAttack(sigma=-1.0)
        with pytest.raises(ValueError):
            RandomVectorAttack(amplitude=0.0)


class TestMagnitudeAndOmniscient:
    def test_magnitude_preserves_direction(self, rng):
        own = np.array([1.0, -1.0, 2.0])
        out = MagnitudeAttack(factor=50.0).corrupt(make_context(rng, own=own, d=3))
        np.testing.assert_allclose(out, 50.0 * own)

    def test_opposite_of_mean(self, rng):
        ctx = make_context(rng, own=np.zeros(4), d=4)
        out = OppositeOfMeanAttack(strength=3.0).corrupt(ctx)
        np.testing.assert_allclose(out, -3.0 * ctx.honest_matrix().mean(axis=0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MagnitudeAttack(factor=0.0)
        with pytest.raises(ValueError):
            OppositeOfMeanAttack(strength=-1.0)


class TestLabelFlip:
    def test_flip_labels_rotation(self):
        labels = np.array([0, 1, 9])
        np.testing.assert_array_equal(flip_labels(labels, 10), [1, 2, 0])

    def test_flip_labels_custom_offset(self):
        labels = np.array([0, 1, 2])
        np.testing.assert_array_equal(flip_labels(labels, 10, offset=9), [9, 0, 1])

    def test_noop_offset_rejected(self):
        with pytest.raises(ValueError):
            flip_labels(np.array([0, 1]), 10, offset=10)

    def test_attack_forwards_own_gradient(self, rng):
        own = np.array([0.5, -0.5])
        out = LabelFlipAttack().corrupt(make_context(rng, own=own, d=2))
        np.testing.assert_allclose(out, own)

    def test_attack_silent_without_gradient(self, rng):
        assert LabelFlipAttack().corrupt(make_context(rng, own=None, d=2)) is None


class TestPartitionAttack:
    def test_even_attacker_targets_group_a(self, rng):
        attack = PartitionAttack(group_a=[0, 1], group_b=[2, 3])
        ctx = make_context(rng, own=None, honest_count=4, d=2, node=8)
        recipients = attack.recipients(ctx)
        assert recipients is not None
        assert {0, 1}.issubset(recipients)
        assert 2 not in recipients and 3 not in recipients

    def test_odd_attacker_targets_group_b(self, rng):
        attack = PartitionAttack(group_a=[0, 1], group_b=[2, 3])
        ctx = make_context(rng, own=None, honest_count=4, d=2, node=9)
        recipients = attack.recipients(ctx)
        assert {2, 3}.issubset(recipients)

    def test_echoes_group_vector(self, rng):
        attack = PartitionAttack(group_a=[0, 1], group_b=[2, 3])
        ctx = make_context(rng, own=None, honest_count=4, d=3, node=8)
        out = attack.corrupt(ctx)
        expected = np.mean([ctx.honest_vectors[0], ctx.honest_vectors[1]], axis=0)
        np.testing.assert_allclose(out, expected)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            PartitionAttack(group_a=[0, 1], group_b=[1, 2])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            PartitionAttack(group_a=[], group_b=[1])


class TestAttackRegistry:
    def test_expected_attacks_registered(self):
        expected = {
            "sign-flip", "crash", "gaussian-noise", "random-vector",
            "magnitude", "opposite-mean", "label-flip",
        }
        assert expected.issubset(set(available_attacks()))

    def test_make_attack(self):
        attack = make_attack("sign-flip", scale=2.0)
        assert isinstance(attack, SignFlipAttack)
        assert attack.scale == 2.0

    def test_unknown_attack(self):
        with pytest.raises(KeyError):
            make_attack("not-an-attack")
