"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.datasets import (
    Dataset,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    train_test_split,
)


class TestDataset:
    def test_basic_properties(self, tiny_dataset):
        assert len(tiny_dataset) == 200
        assert tiny_dataset.image_shape == (28, 28)
        assert tiny_dataset.feature_dim == 784
        assert tiny_dataset.num_classes == 10

    def test_flattened_shape(self, tiny_dataset):
        assert tiny_dataset.flattened().shape == (200, 784)

    def test_subset(self, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(10))
        assert len(sub) == 10
        np.testing.assert_allclose(sub.images[0], tiny_dataset.images[0])

    def test_class_counts_sum(self, tiny_dataset):
        assert tiny_dataset.class_counts().sum() == len(tiny_dataset)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(images=np.zeros((5, 4, 4)), labels=np.zeros(4, dtype=int), num_classes=2)

    def test_labels_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Dataset(images=np.zeros((3, 2, 2)), labels=np.array([0, 1, 5]), num_classes=3)

    def test_num_classes_minimum(self):
        with pytest.raises(ValueError):
            Dataset(images=np.zeros((3, 2, 2)), labels=np.zeros(3, dtype=int), num_classes=1)


class TestGenerators:
    def test_mnist_shapes_and_range(self):
        data = make_synthetic_mnist(50, seed=0)
        assert data.images.shape == (50, 28, 28)
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert data.name == "synthetic-mnist"

    def test_cifar_shapes(self):
        data = make_synthetic_cifar10(40, seed=0)
        assert data.images.shape == (40, 32, 32, 3)
        assert data.num_classes == 10

    def test_deterministic_given_seed(self):
        a = make_synthetic_mnist(30, seed=7)
        b = make_synthetic_mnist(30, seed=7)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_mnist(30, seed=1)
        b = make_synthetic_mnist(30, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_roughly_balanced_classes(self):
        data = make_synthetic_mnist(500, seed=0)
        counts = data.class_counts()
        assert counts.min() >= 40 and counts.max() <= 60

    def test_classes_are_separable(self):
        # A nearest-template classifier must beat chance by a wide margin,
        # otherwise the learning experiments could not distinguish
        # attack-induced failure from an unlearnable task.
        data = make_synthetic_mnist(400, noise=0.15, seed=0)
        flat = data.flattened()
        centroids = np.stack([flat[data.labels == c].mean(axis=0) for c in range(10)])
        dists = np.linalg.norm(flat[:, None, :] - centroids[None, :, :], axis=2)
        preds = dists.argmin(axis=1)
        accuracy = (preds == data.labels).mean()
        assert accuracy > 0.8

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_mnist(5, num_classes=10)


class TestTrainTestSplit:
    def test_sizes(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, test_fraction=0.1, seed=0)
        assert len(train) + len(test) == len(tiny_dataset)
        assert len(test) == 20

    def test_disjoint(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, test_fraction=0.25, seed=0)
        # Compare via flattened rows: no test image should appear in train.
        train_set = {tuple(row) for row in train.flattened().round(6)}
        overlap = sum(tuple(row) in train_set for row in test.flattened().round(6))
        assert overlap == 0

    def test_invalid_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, test_fraction=1.0)

    def test_deterministic(self, tiny_dataset):
        a_train, _ = train_test_split(tiny_dataset, seed=5)
        b_train, _ = train_test_split(tiny_dataset, seed=5)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)
