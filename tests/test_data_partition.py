"""Tests for the heterogeneity partitioners."""

import numpy as np
import pytest

from repro.data.batching import BatchSampler
from repro.data.partition import (
    Heterogeneity,
    partition_dataset,
    partition_extreme,
    partition_mild,
    partition_uniform,
)


def total_size(shards):
    return sum(len(s) for s in shards)


class TestUniformPartition:
    def test_covers_dataset(self, tiny_dataset):
        shards = partition_uniform(tiny_dataset, 10, seed=0)
        assert len(shards) == 10
        assert total_size(shards) == len(tiny_dataset)

    def test_every_client_sees_most_classes(self, tiny_dataset):
        shards = partition_uniform(tiny_dataset, 5, seed=0)
        for shard in shards:
            present = (shard.class_counts() > 0).sum()
            assert present >= 8

    def test_roughly_equal_sizes(self, tiny_dataset):
        shards = partition_uniform(tiny_dataset, 10, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 10

    def test_single_client_gets_everything(self, tiny_dataset):
        shards = partition_uniform(tiny_dataset, 1, seed=0)
        assert len(shards) == 1 and len(shards[0]) == len(tiny_dataset)


class TestMildPartition:
    def test_covers_dataset(self, tiny_dataset):
        shards = partition_mild(tiny_dataset, 10, seed=0)
        assert total_size(shards) == len(tiny_dataset)

    def test_clients_see_many_classes(self, tiny_dataset):
        shards = partition_mild(tiny_dataset, 10, seed=0)
        for shard in shards:
            assert (shard.class_counts() > 0).sum() >= 6

    def test_shares_are_skewed_but_bounded(self):
        from repro.data.datasets import make_synthetic_mnist

        data = make_synthetic_mnist(1000, seed=0)
        shards = partition_mild(data, 10, seed=0)
        # Per class, one client holds ~5% and another ~15%.
        for cls in range(10):
            class_total = int((data.labels == cls).sum())
            per_client = np.array([int((s.labels == cls).sum()) for s in shards])
            assert per_client.min() <= 0.08 * class_total
            assert per_client.max() >= 0.12 * class_total

    def test_needs_two_clients(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_mild(tiny_dataset, 1)


class TestExtremePartition:
    def test_covers_dataset(self, tiny_dataset):
        shards = partition_extreme(tiny_dataset, 10, seed=0)
        assert total_size(shards) == len(tiny_dataset)

    def test_at_most_three_classes_per_client(self):
        # 2 shards of a label-sorted dataset give each client at most ~2
        # classes (3 when a shard straddles a class boundary).
        from repro.data.datasets import make_synthetic_mnist

        data = make_synthetic_mnist(1000, seed=0)
        shards = partition_extreme(data, 10, seed=0)
        for shard in shards:
            assert (shard.class_counts() > 0).sum() <= 4

    def test_more_heterogeneous_than_uniform(self):
        from repro.data.datasets import make_synthetic_mnist

        data = make_synthetic_mnist(1000, seed=0)
        uniform = partition_uniform(data, 10, seed=0)
        extreme = partition_extreme(data, 10, seed=0)

        def mean_classes(shards):
            return np.mean([(s.class_counts() > 0).sum() for s in shards])

        assert mean_classes(extreme) < mean_classes(uniform)

    def test_too_small_dataset_rejected(self):
        from repro.data.datasets import make_synthetic_mnist

        data = make_synthetic_mnist(15, seed=0)
        with pytest.raises(ValueError):
            partition_extreme(data, 10)


class TestPartitionDispatch:
    @pytest.mark.parametrize("regime", ["uniform", "mild", "extreme"])
    def test_string_regimes(self, tiny_dataset, regime):
        shards = partition_dataset(tiny_dataset, 5, regime, seed=0)
        assert len(shards) == 5

    def test_enum_regime(self, tiny_dataset):
        shards = partition_dataset(tiny_dataset, 4, Heterogeneity.UNIFORM, seed=0)
        assert len(shards) == 4

    def test_unknown_regime(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_dataset(tiny_dataset, 4, "chaotic")

    def test_deterministic_given_seed(self, tiny_dataset):
        a = partition_dataset(tiny_dataset, 5, "extreme", seed=3)
        b = partition_dataset(tiny_dataset, 5, "extreme", seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.labels, y.labels)


class TestBatchSampler:
    def test_sample_shapes(self, tiny_dataset):
        sampler = BatchSampler(tiny_dataset, batch_size=16, seed=0)
        images, labels = sampler.sample()
        assert images.shape == (16, 28, 28)
        assert labels.shape == (16,)

    def test_small_dataset_samples_with_replacement(self, tiny_dataset):
        small = tiny_dataset.subset(np.arange(4))
        sampler = BatchSampler(small, batch_size=16, seed=0)
        images, labels = sampler.sample()
        assert images.shape[0] == 16

    def test_epoch_covers_dataset(self, tiny_dataset):
        sampler = BatchSampler(tiny_dataset, batch_size=32, seed=0)
        seen = sum(batch[0].shape[0] for batch in sampler.epoch())
        assert seen == len(tiny_dataset)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            BatchSampler(tiny_dataset, batch_size=0)

    def test_deterministic(self, tiny_dataset):
        a = BatchSampler(tiny_dataset, batch_size=8, seed=1).sample()[1]
        b = BatchSampler(tiny_dataset, batch_size=8, seed=1).sample()[1]
        np.testing.assert_array_equal(a, b)
