"""Tests for the scheduler-pluggable round engine (repro.engine)."""

import numpy as np
import pytest

from repro.byzantine.base import DELIVERY_TRACE_WINDOW, AttackContext
from repro.byzantine.timing import (
    AdaptiveDelayAttack,
    SelectiveDelayAttack,
    WithholdThenRushAttack,
)
from repro.engine import (
    AsynchronousScheduler,
    LossyScheduler,
    PartiallySynchronousScheduler,
    SynchronousScheduler,
    WaitCondition,
    make_scheduler,
    run_exchange,
)
from repro.network import EmptyInboxError
from repro.network.delivery import RoundResult, full_broadcast_plan
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast


def _values(n, d=2):
    return {i: np.full(d, float(i)) for i in range(n)}


def _honest_plan(values):
    return lambda node, _r: full_broadcast_plan(node, values[node])


class TestSynchronousScheduler:
    def test_matches_reliable_broadcast(self):
        n = 4
        engine = SynchronousScheduler(n)
        values = _values(n)
        result = engine.run_round(0, _honest_plan(values))
        reference = ReliableBroadcast(n).deliver(
            [full_broadcast_plan(i, values[i]) for i in range(n)], 0
        )
        for node in range(n):
            assert [m.sender for m in result.inboxes[node]] == [
                m.sender for m in reference[node]
            ]
            np.testing.assert_array_equal(
                result.received_matrix(node),
                np.stack([m.payload for m in reference[node]]),
            )

    def test_ignores_adversary_delays(self):
        engine = SynchronousScheduler(3, byzantine=[2])
        values = _values(2)
        result = engine.run_round(
            0,
            _honest_plan(values),
            adversary_plan=lambda node, r, honest: BroadcastPlan(
                sender=node, payload=np.ones(2), delays={0: 5}
            ),
        )
        # Synchrony: the delayed message still arrives in its own round.
        assert result.senders(0) == [0, 1, 2]

    def test_history_disabled(self):
        engine = SynchronousScheduler(3, keep_history=False)
        values = _values(3)
        for r in range(4):
            engine.run_round(r, _honest_plan(values))
        assert list(engine.history) == []
        assert engine.rounds_executed == 4

    def test_history_bounded(self):
        engine = SynchronousScheduler(3, max_history=2)
        values = _values(3)
        for r in range(5):
            engine.run_round(r, _honest_plan(values))
        assert [res.round_index for res in engine.history] == [3, 4]

    def test_quorum_starve_policy_marks_nodes(self):
        engine = SynchronousScheduler(4, byzantine=[2, 3])
        engine.require_quorum(3, policy="starve")
        values = _values(2)
        result = engine.run_round(0, _honest_plan(values))
        assert result.starved == (0, 1)

    def test_quorum_raise_policy_unchanged(self):
        engine = SynchronousScheduler(4, byzantine=[2, 3])
        engine.require_quorum(3)
        values = _values(2)
        with pytest.raises(RuntimeError):
            engine.run_round(0, _honest_plan(values))

    def test_invalid_quorum_policy(self):
        engine = SynchronousScheduler(3)
        with pytest.raises(ValueError):
            engine.require_quorum(1, policy="ignore")


class TestEmptyInboxError:
    def test_distinct_type_exported(self):
        result = RoundResult(round_index=0, inboxes={0: []})
        with pytest.raises(EmptyInboxError):
            result.received_matrix(0)

    def test_is_a_value_error(self):
        assert issubclass(EmptyInboxError, ValueError)


class TestPartiallySynchronousScheduler:
    def test_no_messages_lost_across_horizon(self):
        n, rounds, delay = 4, 6, 2
        engine = PartiallySynchronousScheduler(n, max_delay=delay, delay_prob=0.7, seed=3)
        values = _values(n)
        delivered = 0
        for r in range(rounds):
            result = engine.run_round(r, _honest_plan(values))
            delivered += sum(len(msgs) for msgs in result.inboxes.values())
        # Everything sent is either delivered or still within the horizon.
        assert delivered + engine.pending_count() == n * n * rounds
        assert engine.stats["sent"] == n * n * rounds
        assert engine.stats["dropped"] == 0

    def test_self_delivery_immediate(self):
        engine = PartiallySynchronousScheduler(3, max_delay=3, delay_prob=1.0, seed=0)
        values = _values(3)
        result = engine.run_round(0, _honest_plan(values))
        for node in range(3):
            assert node in result.senders(node)

    def test_deterministic_given_seed(self):
        def trace(seed):
            engine = PartiallySynchronousScheduler(4, max_delay=2, delay_prob=0.5, seed=seed)
            values = _values(4)
            out = []
            for r in range(5):
                result = engine.run_round(r, _honest_plan(values))
                out.append([result.senders(node) for node in range(4)])
            return out

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_late_messages_arrive_before_fresh_ones(self):
        engine = PartiallySynchronousScheduler(2, max_delay=1, delay_prob=1.0, seed=0)
        values = _values(2)
        engine.run_round(0, _honest_plan(values))
        result = engine.run_round(1, _honest_plan(values))
        # Node 0's inbox: the delayed round-0 message from node 1 first,
        # then its own round-1 self-delivery.
        rounds_seen = [m.round_index for m in result.inboxes[0]]
        assert rounds_seen == sorted(rounds_seen)

    def test_adversary_delay_honoured_and_capped(self):
        engine = PartiallySynchronousScheduler(
            3, byzantine=[2], max_delay=2, delay_prob=0.0, seed=0
        )
        values = _values(2)

        def adversary(node, r, honest):
            return BroadcastPlan(
                sender=node, payload=np.full(2, 9.0), delays={0: 9, 1: 0}
            )

        r0 = engine.run_round(0, _honest_plan(values), adversary)
        assert 2 in r0.senders(1) and 2 not in r0.senders(0)
        r1 = engine.run_round(1, _honest_plan(values), adversary)
        # The requested lag of 9 was capped at the horizon (2 rounds).
        assert 2 not in [m.sender for m in r1.inboxes[0] if m.round_index == 0]
        r2 = engine.run_round(2, _honest_plan(values), adversary)
        assert any(m.sender == 2 and m.round_index == 0 for m in r2.inboxes[0])

    def test_reset_expires_pending_not_dropped(self):
        # The model's contract is "messages are never lost": in-flight
        # messages flushed at an exchange boundary are expired, and must
        # never inflate the loss counter.
        engine = PartiallySynchronousScheduler(3, max_delay=3, delay_prob=1.0, seed=1)
        values = _values(3)
        engine.run_round(0, _honest_plan(values))
        pending = engine.pending_count()
        assert pending > 0
        engine.reset()
        assert engine.pending_count() == 0
        assert engine.stats["dropped"] == 0
        assert engine.stats["expired_at_reset"] == pending

    def test_accounting_identity_across_exchanges(self):
        # sent == delivered + expired_at_reset + pending at all times.
        engine = PartiallySynchronousScheduler(4, max_delay=2, delay_prob=0.6, seed=9)
        values = _values(4)
        for exchange in range(3):
            for r in range(4):
                engine.run_round(r, _honest_plan(values))
            stats = engine.stats
            assert stats["sent"] == (
                stats["delivered"] + stats["expired_at_reset"] + engine.pending_count()
            )
            engine.reset()
        assert engine.stats["dropped"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PartiallySynchronousScheduler(3, max_delay=-1)
        with pytest.raises(ValueError):
            PartiallySynchronousScheduler(3, delay_prob=1.5)


class TestLossyScheduler:
    def test_zero_drop_matches_synchronous(self):
        n = 4
        lossy = LossyScheduler(n, drop_rate=0.0, seed=0)
        sync = SynchronousScheduler(n)
        values = _values(n)
        a = lossy.run_round(0, _honest_plan(values))
        b = sync.run_round(0, _honest_plan(values))
        for node in range(n):
            assert a.senders(node) == b.senders(node)

    def test_drops_are_seeded(self):
        def senders(seed):
            engine = LossyScheduler(5, drop_rate=0.4, seed=seed)
            result = engine.run_round(0, _honest_plan(_values(5)))
            return [result.senders(node) for node in range(5)]

        assert senders(7) == senders(7)
        assert senders(7) != senders(8)

    def test_self_delivery_never_dropped(self):
        engine = LossyScheduler(4, drop_rate=0.95, seed=2)
        result = engine.run_round(0, _honest_plan(_values(4)))
        for node in range(4):
            assert node in result.senders(node)

    def test_crash_window_silences_node_both_ways(self):
        engine = LossyScheduler(4, crash_schedule=[(1, 0, 2)], seed=0)
        values = _values(4)
        r0 = engine.run_round(0, _honest_plan(values))
        for node in range(4):
            assert 1 not in r0.senders(node)
        assert r0.senders(1) == []
        engine.run_round(1, _honest_plan(values))
        r2 = engine.run_round(2, _honest_plan(values))
        # Recovery: the window [0, 2) is over on the third round.
        assert 1 in r2.senders(0)
        assert r2.senders(1) == [0, 1, 2, 3]
        assert engine.stats["crash_omitted"] > 0

    def test_crash_clock_is_monotone_across_resets(self):
        engine = LossyScheduler(3, crash_schedule=[(0, 2, 3)], seed=0)
        values = _values(3)
        engine.run_round(0, _honest_plan(values))
        engine.reset()  # exchange boundary must not rewind the clock
        engine.run_round(0, _honest_plan(values))
        result = engine.run_round(1, _honest_plan(values))  # global round 2
        assert 0 not in result.senders(1)

    def test_invalid_crash_windows(self):
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(5, 0, 1)])
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(0, 2, 2)])
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(0, 1)])

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            LossyScheduler(3, drop_rate=1.0)

    def test_crashed_sender_does_not_inflate_sent(self):
        # Regression: a crashed node "neither sends nor receives", so
        # its would-be sends are `suppressed` and must stay out of the
        # deliv% denominator.  Pinned counters: n=3, node 1 down for the
        # single round -> node 1's 3 sends suppressed; of the remaining
        # 6 sends the two addressed to node 1 are crash-omitted.
        engine = LossyScheduler(3, crash_schedule=[(1, 0, 1)], seed=0)
        engine.run_round(0, _honest_plan(_values(3)))
        assert engine.stats_snapshot() == {
            "sent": 6,
            "delivered": 4,
            "dropped": 0,
            "delayed": 0,
            "crash_omitted": 2,
            "suppressed": 3,
        }
        # The identity the counters are supposed to satisfy.
        assert engine.stats["sent"] == (
            engine.stats["delivered"] + engine.stats["dropped"]
            + engine.stats["crash_omitted"]
        )

    def test_drop_stream_independent_of_crash_schedule(self):
        # Regression: the per-link drop variate is drawn with common
        # random numbers, so adding a crash window must not reshuffle
        # which of the *surviving* links drop for the same seed.
        def survivor_senders(crash_schedule):
            engine = LossyScheduler(
                6, drop_rate=0.5, crash_schedule=crash_schedule, seed=13
            )
            result = engine.run_round(0, _honest_plan(_values(6)))
            # Links not touching the crashed node exist in both runs.
            return {
                node: [s for s in result.senders(node) if s != 2]
                for node in range(6)
                if node != 2
            }

        assert survivor_senders([]) == survivor_senders([(2, 0, 1)])


class TestAsynchronousScheduler:
    def _engine(self, n=5, **kwargs):
        kwargs.setdefault("timeout_rounds", 3.0)
        kwargs.setdefault("seed", 3)
        engine = AsynchronousScheduler(n, **kwargs)
        return engine

    def test_requires_explicit_wait_condition(self):
        engine = self._engine()
        with pytest.raises(RuntimeError, match="wait condition"):
            engine.run_round(0, _honest_plan(_values(5)))

    def test_wait_count_stops_at_target(self):
        # Waiting for exactly 2 messages: every node processes its round
        # with at least self-delivery plus whatever beat the deadline,
        # and no node delivers fewer than its target when enough arrive.
        engine = self._engine()
        engine.wait_for(count=2)
        values = _values(5)
        result = engine.run_round(0, _honest_plan(values))
        for node in range(5):
            assert node in result.senders(node)  # self-delivery immediate
            assert len(result.inboxes[node]) >= 2

    def test_quorum_wait_uses_require_quorum(self):
        engine = self._engine()
        engine.require_quorum(4, policy="starve")
        engine.wait_for(quorum=True)
        result = engine.run_round(0, _honest_plan(_values(5)))
        for node in range(5):
            assert len(result.inboxes[node]) >= 4

    def test_explicit_count_wins_over_quorum(self):
        engine = self._engine(wait_count=1)
        engine.require_quorum(4, policy="starve")
        engine.wait_for(quorum=True)
        assert engine.wait.count == 1  # the pinned count survived
        engine.run_round(0, _honest_plan(_values(5)))

    def test_no_message_ever_lost(self):
        engine = self._engine()
        engine.wait_for(quorum=True)  # target 0: wait the full window
        values = _values(5)
        for r in range(8):
            engine.run_round(r, _honest_plan(values))
        stats = engine.stats
        assert stats["sent"] == 5 * 5 * 8
        assert stats["dropped"] == 0
        assert stats["sent"] == stats["delivered"] + engine.pending_count()

    def test_deterministic_given_seed(self):
        def trace(seed):
            engine = self._engine(seed=seed)
            engine.wait_for(count=3)
            values = _values(5)
            out = []
            for r in range(6):
                result = engine.run_round(r, _honest_plan(values))
                out.append([result.senders(node) for node in range(5)])
            return out

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_burstiness_changes_delay_profile(self):
        def delayed(burstiness):
            engine = self._engine(
                burstiness=burstiness, burst_factor=20.0, timeout_rounds=1.0, seed=5
            )
            engine.wait_for(count=5)  # full inbox, bounded by the timeout
            values = _values(5)
            for r in range(20):
                engine.run_round(r, _honest_plan(values))
            return engine.stats["delayed"]

        # A bursty regime holds strictly more messages past their round.
        assert delayed(0.8) > delayed(0.0)

    def test_adversary_delay_uncapped(self):
        # No horizon: a pinned lag of 7 rounds is honoured, not clamped.
        engine = self._engine(n=3, byzantine=[2], timeout_rounds=1.0)
        engine.wait_for(count=1)
        values = _values(2)

        def adversary(node, r, honest):
            return BroadcastPlan(
                sender=node, payload=np.full(2, 9.0), delays={0: 7, 1: 0}
            )

        r0 = engine.run_round(0, _honest_plan(values), adversary)
        assert 2 in r0.senders(1) and 2 not in r0.senders(0)
        for r in range(1, 7):
            result = engine.run_round(r, _honest_plan(values), adversary)
            assert 2 not in [m.sender for m in result.inboxes[0] if m.round_index == 0]
        r7 = engine.run_round(7, _honest_plan(values), adversary)
        assert any(m.sender == 2 and m.round_index == 0 for m in r7.inboxes[0])

    def test_reset_expires_in_flight(self):
        engine = self._engine(timeout_rounds=1.0)
        engine.wait_for(count=1)
        engine.run_round(0, _honest_plan(_values(5)))
        pending = engine.pending_count()
        assert pending > 0
        engine.reset()
        assert engine.pending_count() == 0
        assert engine.stats["expired_at_reset"] == pending
        assert engine.stats["dropped"] == 0

    def test_per_round_traces_recorded(self):
        engine = self._engine()
        engine.wait_for(count=2)
        values = _values(5)
        for r in range(3):
            engine.run_round(r, _honest_plan(values))
        traces = engine.trace_snapshot()
        assert [row["round"] for row in traces] == [0, 1, 2]
        assert all(row["sent"] == 25 for row in traces)
        assert sum(row.get("delivered", 0) for row in traces) == engine.stats["delivered"]
        # Traces survive exchange resets (they describe the whole run).
        engine.reset()
        assert len(engine.trace_snapshot()) == 3

    def test_exchange_runs_end_to_end(self):
        engine = self._engine()
        engine.require_quorum(3, policy="starve")
        initial = {i: np.full(2, float(i)) for i in range(5)}
        final = run_exchange(
            engine, initial, 4, lambda _n, received: received.mean(axis=0),
            wait=WaitCondition(quorum=True, timeout_rounds=2.0),
        )
        assert len(final) == 5
        spread = max(float(np.linalg.norm(final[i] - final[j]))
                     for i in final for j in final)
        assert spread < 4.0  # the exchange contracts despite the asynchrony

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, timeout_rounds=0.0)
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, tail_index=1.0)
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, burstiness=1.0)
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, burst_factor=0.5)
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, delay_scale=-0.1)
        with pytest.raises(ValueError):
            AsynchronousScheduler(3, wait_count=-1)


class TestWaitConditionApi:
    def test_merge_semantics(self):
        engine = SynchronousScheduler(4)
        engine.wait_for(count=3)
        engine.wait_for(quorum=True, timeout_rounds=2.5)
        assert engine.wait == WaitCondition(count=3, quorum=True, timeout_rounds=2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaitCondition(count=-1)
        with pytest.raises(ValueError):
            WaitCondition(timeout_rounds=0.0)

    def test_horizon_schedulers_ignore_wait(self):
        engine = SynchronousScheduler(3)
        engine.wait_for(count=1, timeout_rounds=1.0)
        result = engine.run_round(0, _honest_plan(_values(3)))
        # Lock-step delivery is unchanged: full inboxes regardless.
        assert all(len(result.inboxes[n]) == 3 for n in range(3))


class TestMakeScheduler:
    def test_names(self):
        assert isinstance(make_scheduler("synchronous", 4), SynchronousScheduler)
        assert isinstance(make_scheduler("partial", 4, delay=1), PartiallySynchronousScheduler)
        assert isinstance(make_scheduler("lossy", 4, drop_rate=0.1), LossyScheduler)
        assert isinstance(
            make_scheduler("asynchronous", 4, wait_timeout=2.0), AsynchronousScheduler
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("quantum", 4)

    def test_async_knobs_threaded(self):
        engine = make_scheduler(
            "asynchronous", 4, wait_count=2, wait_timeout=1.5, burstiness=0.3
        )
        assert engine.wait.count == 2
        assert engine.timeout_rounds == 1.5
        assert engine.burstiness == 0.3

    def test_mismatched_knobs_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("synchronous", 4, drop_rate=0.1)
        with pytest.raises(ValueError):
            make_scheduler("partial", 4)  # delay missing
        with pytest.raises(ValueError):
            make_scheduler("partial", 4, delay=1, drop_rate=0.2)
        with pytest.raises(ValueError):
            make_scheduler("lossy", 4, delay=2)
        with pytest.raises(ValueError):
            make_scheduler("asynchronous", 4)  # wait_timeout missing
        with pytest.raises(ValueError):
            make_scheduler("asynchronous", 4, wait_timeout=2.0, drop_rate=0.1)
        with pytest.raises(ValueError):
            make_scheduler("lossy", 4, drop_rate=0.1, wait_timeout=2.0)


class TestRunExchange:
    def test_mean_exchange_converges(self):
        engine = SynchronousScheduler(3)
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        for vec in final.values():
            np.testing.assert_allclose(vec, [1.0, 1.0])

    def test_starved_node_keeps_vector(self):
        # Node 1 is crashed for the round: it receives nothing and must
        # simply carry its current vector instead of failing.
        engine = LossyScheduler(3, crash_schedule=[(1, 0, 1)], seed=0)
        # Quorum 2: the crashed node (0 messages) starves; the others
        # still clear the bar with the two surviving senders.
        engine.require_quorum(2, policy="starve")
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        np.testing.assert_array_equal(final[1], initial[1])
        np.testing.assert_allclose(final[0], [1.0, 1.0])

    def test_empty_inbox_stalls_instead_of_raising(self):
        # No quorum configured: the starved branch is off, so the node
        # hits its empty inbox and must treat it as a stall.
        engine = LossyScheduler(3, crash_schedule=[(1, 0, 1)], seed=0)
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        np.testing.assert_array_equal(final[1], initial[1])

    def test_negative_rounds_rejected(self):
        engine = SynchronousScheduler(2)
        with pytest.raises(ValueError):
            run_exchange(engine, {0: np.zeros(1), 1: np.zeros(1)}, -1, lambda n, r: r)


class TestTimingAttacks:
    def _context(self, round_index=0, horizon=0):
        return AttackContext(
            node=3,
            round_index=round_index,
            own_vector=np.ones(2),
            honest_vectors={0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])},
            rng=np.random.default_rng(0),
            horizon=horizon,
        )

    def test_withhold_then_rush(self):
        attack = WithholdThenRushAttack(withhold_rounds=2, scale=4.0)
        assert attack.corrupt(self._context(round_index=0)) is None
        assert attack.corrupt(self._context(round_index=1)) is None
        late = attack.corrupt(self._context(round_index=2))
        np.testing.assert_allclose(late, [-2.0, -2.0])

    def test_selective_delay_targets_upper_half(self):
        attack = SelectiveDelayAttack(delay=3)
        delays = attack.send_delays(self._context(horizon=2))
        # Late half capped at the horizon, early half pinned immediate.
        assert delays == {0: 0, 1: 2}

    def test_selective_delay_degrades_under_synchrony(self):
        attack = SelectiveDelayAttack(delay=2)
        assert attack.send_delays(self._context(horizon=0)) is None
        payload = attack.corrupt(self._context(horizon=0))
        np.testing.assert_allclose(payload, [-0.5, -0.5])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WithholdThenRushAttack(withhold_rounds=-1)
        with pytest.raises(ValueError):
            SelectiveDelayAttack(delay=0)
        with pytest.raises(ValueError):
            AdaptiveDelayAttack(max_lag=0)
        with pytest.raises(ValueError):
            AdaptiveDelayAttack(window=0)
        with pytest.raises(ValueError, match="trace rounds"):
            # Larger than the engine ever exposes: reject rather than
            # silently behaving like the bound.
            AdaptiveDelayAttack(window=DELIVERY_TRACE_WINDOW + 1)

    def _adaptive_context(self, trace, horizon=3):
        return AttackContext(
            node=3,
            round_index=1,
            own_vector=np.ones(2),
            honest_vectors={0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])},
            rng=np.random.default_rng(0),
            horizon=horizon,
            delivery_trace=trace,
        )

    def test_adaptive_delay_scales_with_observed_fill(self):
        attack = AdaptiveDelayAttack(max_lag=3)
        healthy = ({"round": 0, "sent": 20, "delivered": 20},)
        starving = ({"round": 0, "sent": 20, "delivered": 2},)
        # Healthy network: hold the corrupted value back maximally.
        assert attack.send_delays(self._adaptive_context(healthy)) == {0: 3, 1: 3}
        # Starving network: strike immediately (no delay request).
        assert attack.send_delays(self._adaptive_context(starving)) is None

    def test_adaptive_delay_without_trace_uses_max_lag(self):
        attack = AdaptiveDelayAttack(max_lag=2)
        assert attack.send_delays(self._adaptive_context(())) == {0: 2, 1: 2}

    def test_adaptive_delay_degrades_under_synchrony(self):
        attack = AdaptiveDelayAttack()
        assert attack.send_delays(self._adaptive_context((), horizon=0)) is None
        payload = attack.corrupt(self._adaptive_context(()))
        np.testing.assert_allclose(payload, [-0.5, -0.5])

    def test_adaptive_delay_drives_exchange(self):
        # End to end on the asynchronous engine: the attack must observe
        # a non-empty delivery trace after the first round and still let
        # the exchange complete.
        engine = AsynchronousScheduler(
            5, byzantine=[4], timeout_rounds=2.0, seed=2
        )
        engine.require_quorum(3, policy="starve")
        engine.wait_for(quorum=True)
        from repro.engine import attack_adversary_plan

        attack = AdaptiveDelayAttack(max_lag=2)
        seen = []
        original = attack.send_delays

        def spying_send_delays(context):
            seen.append(len(context.delivery_trace))
            return original(context)

        attack.send_delays = spying_send_delays
        initial = {i: np.full(2, float(i)) for i in range(4)}
        plan = attack_adversary_plan(
            lambda _n: attack, {4: np.zeros(2)},
            np.random.default_rng(0), horizon=engine.horizon, engine=engine,
        )
        run_exchange(engine, initial, 3, lambda _n, r: r.mean(axis=0), plan)
        assert seen[0] == 0 and seen[-1] > 0


class TestPlanDelayValidation:
    def test_honest_sender_cannot_delay(self):
        rb = ReliableBroadcast(3, byzantine=[2])
        plan = BroadcastPlan(sender=0, payload=np.ones(1), delays={1: 1})
        with pytest.raises(ValueError):
            rb.validate_plan(plan)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            BroadcastPlan(sender=0, payload=np.ones(1), delays={1: -1})
