"""Tests for the scheduler-pluggable round engine (repro.engine)."""

import numpy as np
import pytest

from repro.byzantine.base import AttackContext
from repro.byzantine.timing import SelectiveDelayAttack, WithholdThenRushAttack
from repro.engine import (
    LossyScheduler,
    PartiallySynchronousScheduler,
    SynchronousScheduler,
    make_scheduler,
    run_exchange,
)
from repro.network import EmptyInboxError
from repro.network.delivery import RoundResult, full_broadcast_plan
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast


def _values(n, d=2):
    return {i: np.full(d, float(i)) for i in range(n)}


def _honest_plan(values):
    return lambda node, _r: full_broadcast_plan(node, values[node])


class TestSynchronousScheduler:
    def test_matches_reliable_broadcast(self):
        n = 4
        engine = SynchronousScheduler(n)
        values = _values(n)
        result = engine.run_round(0, _honest_plan(values))
        reference = ReliableBroadcast(n).deliver(
            [full_broadcast_plan(i, values[i]) for i in range(n)], 0
        )
        for node in range(n):
            assert [m.sender for m in result.inboxes[node]] == [
                m.sender for m in reference[node]
            ]
            np.testing.assert_array_equal(
                result.received_matrix(node),
                np.stack([m.payload for m in reference[node]]),
            )

    def test_ignores_adversary_delays(self):
        engine = SynchronousScheduler(3, byzantine=[2])
        values = _values(2)
        result = engine.run_round(
            0,
            _honest_plan(values),
            adversary_plan=lambda node, r, honest: BroadcastPlan(
                sender=node, payload=np.ones(2), delays={0: 5}
            ),
        )
        # Synchrony: the delayed message still arrives in its own round.
        assert result.senders(0) == [0, 1, 2]

    def test_history_disabled(self):
        engine = SynchronousScheduler(3, keep_history=False)
        values = _values(3)
        for r in range(4):
            engine.run_round(r, _honest_plan(values))
        assert list(engine.history) == []
        assert engine.rounds_executed == 4

    def test_history_bounded(self):
        engine = SynchronousScheduler(3, max_history=2)
        values = _values(3)
        for r in range(5):
            engine.run_round(r, _honest_plan(values))
        assert [res.round_index for res in engine.history] == [3, 4]

    def test_quorum_starve_policy_marks_nodes(self):
        engine = SynchronousScheduler(4, byzantine=[2, 3])
        engine.require_quorum(3, policy="starve")
        values = _values(2)
        result = engine.run_round(0, _honest_plan(values))
        assert result.starved == (0, 1)

    def test_quorum_raise_policy_unchanged(self):
        engine = SynchronousScheduler(4, byzantine=[2, 3])
        engine.require_quorum(3)
        values = _values(2)
        with pytest.raises(RuntimeError):
            engine.run_round(0, _honest_plan(values))

    def test_invalid_quorum_policy(self):
        engine = SynchronousScheduler(3)
        with pytest.raises(ValueError):
            engine.require_quorum(1, policy="ignore")


class TestEmptyInboxError:
    def test_distinct_type_exported(self):
        result = RoundResult(round_index=0, inboxes={0: []})
        with pytest.raises(EmptyInboxError):
            result.received_matrix(0)

    def test_is_a_value_error(self):
        assert issubclass(EmptyInboxError, ValueError)


class TestPartiallySynchronousScheduler:
    def test_no_messages_lost_across_horizon(self):
        n, rounds, delay = 4, 6, 2
        engine = PartiallySynchronousScheduler(n, max_delay=delay, delay_prob=0.7, seed=3)
        values = _values(n)
        delivered = 0
        for r in range(rounds):
            result = engine.run_round(r, _honest_plan(values))
            delivered += sum(len(msgs) for msgs in result.inboxes.values())
        # Everything sent is either delivered or still within the horizon.
        assert delivered + engine.pending_count() == n * n * rounds
        assert engine.stats["sent"] == n * n * rounds
        assert engine.stats["dropped"] == 0

    def test_self_delivery_immediate(self):
        engine = PartiallySynchronousScheduler(3, max_delay=3, delay_prob=1.0, seed=0)
        values = _values(3)
        result = engine.run_round(0, _honest_plan(values))
        for node in range(3):
            assert node in result.senders(node)

    def test_deterministic_given_seed(self):
        def trace(seed):
            engine = PartiallySynchronousScheduler(4, max_delay=2, delay_prob=0.5, seed=seed)
            values = _values(4)
            out = []
            for r in range(5):
                result = engine.run_round(r, _honest_plan(values))
                out.append([result.senders(node) for node in range(4)])
            return out

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_late_messages_arrive_before_fresh_ones(self):
        engine = PartiallySynchronousScheduler(2, max_delay=1, delay_prob=1.0, seed=0)
        values = _values(2)
        engine.run_round(0, _honest_plan(values))
        result = engine.run_round(1, _honest_plan(values))
        # Node 0's inbox: the delayed round-0 message from node 1 first,
        # then its own round-1 self-delivery.
        rounds_seen = [m.round_index for m in result.inboxes[0]]
        assert rounds_seen == sorted(rounds_seen)

    def test_adversary_delay_honoured_and_capped(self):
        engine = PartiallySynchronousScheduler(
            3, byzantine=[2], max_delay=2, delay_prob=0.0, seed=0
        )
        values = _values(2)

        def adversary(node, r, honest):
            return BroadcastPlan(
                sender=node, payload=np.full(2, 9.0), delays={0: 9, 1: 0}
            )

        r0 = engine.run_round(0, _honest_plan(values), adversary)
        assert 2 in r0.senders(1) and 2 not in r0.senders(0)
        r1 = engine.run_round(1, _honest_plan(values), adversary)
        # The requested lag of 9 was capped at the horizon (2 rounds).
        assert 2 not in [m.sender for m in r1.inboxes[0] if m.round_index == 0]
        r2 = engine.run_round(2, _honest_plan(values), adversary)
        assert any(m.sender == 2 and m.round_index == 0 for m in r2.inboxes[0])

    def test_reset_discards_pending_as_dropped(self):
        engine = PartiallySynchronousScheduler(3, max_delay=3, delay_prob=1.0, seed=1)
        values = _values(3)
        engine.run_round(0, _honest_plan(values))
        pending = engine.pending_count()
        assert pending > 0
        engine.reset()
        assert engine.pending_count() == 0
        assert engine.stats["dropped"] == pending

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PartiallySynchronousScheduler(3, max_delay=-1)
        with pytest.raises(ValueError):
            PartiallySynchronousScheduler(3, delay_prob=1.5)


class TestLossyScheduler:
    def test_zero_drop_matches_synchronous(self):
        n = 4
        lossy = LossyScheduler(n, drop_rate=0.0, seed=0)
        sync = SynchronousScheduler(n)
        values = _values(n)
        a = lossy.run_round(0, _honest_plan(values))
        b = sync.run_round(0, _honest_plan(values))
        for node in range(n):
            assert a.senders(node) == b.senders(node)

    def test_drops_are_seeded(self):
        def senders(seed):
            engine = LossyScheduler(5, drop_rate=0.4, seed=seed)
            result = engine.run_round(0, _honest_plan(_values(5)))
            return [result.senders(node) for node in range(5)]

        assert senders(7) == senders(7)
        assert senders(7) != senders(8)

    def test_self_delivery_never_dropped(self):
        engine = LossyScheduler(4, drop_rate=0.95, seed=2)
        result = engine.run_round(0, _honest_plan(_values(4)))
        for node in range(4):
            assert node in result.senders(node)

    def test_crash_window_silences_node_both_ways(self):
        engine = LossyScheduler(4, crash_schedule=[(1, 0, 2)], seed=0)
        values = _values(4)
        r0 = engine.run_round(0, _honest_plan(values))
        for node in range(4):
            assert 1 not in r0.senders(node)
        assert r0.senders(1) == []
        engine.run_round(1, _honest_plan(values))
        r2 = engine.run_round(2, _honest_plan(values))
        # Recovery: the window [0, 2) is over on the third round.
        assert 1 in r2.senders(0)
        assert r2.senders(1) == [0, 1, 2, 3]
        assert engine.stats["crash_omitted"] > 0

    def test_crash_clock_is_monotone_across_resets(self):
        engine = LossyScheduler(3, crash_schedule=[(0, 2, 3)], seed=0)
        values = _values(3)
        engine.run_round(0, _honest_plan(values))
        engine.reset()  # exchange boundary must not rewind the clock
        engine.run_round(0, _honest_plan(values))
        result = engine.run_round(1, _honest_plan(values))  # global round 2
        assert 0 not in result.senders(1)

    def test_invalid_crash_windows(self):
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(5, 0, 1)])
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(0, 2, 2)])
        with pytest.raises(ValueError):
            LossyScheduler(3, crash_schedule=[(0, 1)])

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            LossyScheduler(3, drop_rate=1.0)


class TestMakeScheduler:
    def test_names(self):
        assert isinstance(make_scheduler("synchronous", 4), SynchronousScheduler)
        assert isinstance(make_scheduler("partial", 4, delay=1), PartiallySynchronousScheduler)
        assert isinstance(make_scheduler("lossy", 4, drop_rate=0.1), LossyScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("quantum", 4)

    def test_mismatched_knobs_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("synchronous", 4, drop_rate=0.1)
        with pytest.raises(ValueError):
            make_scheduler("partial", 4)  # delay missing
        with pytest.raises(ValueError):
            make_scheduler("partial", 4, delay=1, drop_rate=0.2)
        with pytest.raises(ValueError):
            make_scheduler("lossy", 4, delay=2)


class TestRunExchange:
    def test_mean_exchange_converges(self):
        engine = SynchronousScheduler(3)
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        for vec in final.values():
            np.testing.assert_allclose(vec, [1.0, 1.0])

    def test_starved_node_keeps_vector(self):
        # Node 1 is crashed for the round: it receives nothing and must
        # simply carry its current vector instead of failing.
        engine = LossyScheduler(3, crash_schedule=[(1, 0, 1)], seed=0)
        # Quorum 2: the crashed node (0 messages) starves; the others
        # still clear the bar with the two surviving senders.
        engine.require_quorum(2, policy="starve")
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        np.testing.assert_array_equal(final[1], initial[1])
        np.testing.assert_allclose(final[0], [1.0, 1.0])

    def test_empty_inbox_stalls_instead_of_raising(self):
        # No quorum configured: the starved branch is off, so the node
        # hits its empty inbox and must treat it as a stall.
        engine = LossyScheduler(3, crash_schedule=[(1, 0, 1)], seed=0)
        initial = {i: np.full(2, float(i)) for i in range(3)}
        final = run_exchange(
            engine, initial, 1, lambda _n, received: received.mean(axis=0)
        )
        np.testing.assert_array_equal(final[1], initial[1])

    def test_negative_rounds_rejected(self):
        engine = SynchronousScheduler(2)
        with pytest.raises(ValueError):
            run_exchange(engine, {0: np.zeros(1), 1: np.zeros(1)}, -1, lambda n, r: r)


class TestTimingAttacks:
    def _context(self, round_index=0, horizon=0):
        return AttackContext(
            node=3,
            round_index=round_index,
            own_vector=np.ones(2),
            honest_vectors={0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])},
            rng=np.random.default_rng(0),
            horizon=horizon,
        )

    def test_withhold_then_rush(self):
        attack = WithholdThenRushAttack(withhold_rounds=2, scale=4.0)
        assert attack.corrupt(self._context(round_index=0)) is None
        assert attack.corrupt(self._context(round_index=1)) is None
        late = attack.corrupt(self._context(round_index=2))
        np.testing.assert_allclose(late, [-2.0, -2.0])

    def test_selective_delay_targets_upper_half(self):
        attack = SelectiveDelayAttack(delay=3)
        delays = attack.send_delays(self._context(horizon=2))
        # Late half capped at the horizon, early half pinned immediate.
        assert delays == {0: 0, 1: 2}

    def test_selective_delay_degrades_under_synchrony(self):
        attack = SelectiveDelayAttack(delay=2)
        assert attack.send_delays(self._context(horizon=0)) is None
        payload = attack.corrupt(self._context(horizon=0))
        np.testing.assert_allclose(payload, [-0.5, -0.5])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WithholdThenRushAttack(withhold_rounds=-1)
        with pytest.raises(ValueError):
            SelectiveDelayAttack(delay=0)


class TestPlanDelayValidation:
    def test_honest_sender_cannot_delay(self):
        rb = ReliableBroadcast(3, byzantine=[2])
        plan = BroadcastPlan(sender=0, payload=np.ones(1), delays={1: 1})
        with pytest.raises(ValueError):
            rb.validate_plan(plan)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            BroadcastPlan(sender=0, payload=np.ones(1), delays={1: -1})
