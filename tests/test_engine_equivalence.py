"""Round-engine acceptance tests.

Three contracts of the scheduler-pluggable refactor:

1. **Bitwise equivalence** — the ``SynchronousScheduler`` path must
   reproduce the pre-refactor trainers and agreement protocol exactly
   for fixed seeds.  The reference numbers live in
   ``tests/fixtures/equivalence_pre_refactor.json``, generated at the
   last pre-refactor commit (see the sibling generator script); floats
   survive the JSON round trip losslessly, so ``==`` is bitwise.
2. **Crash × quorum interaction** — ``require_quorum`` must fire under
   ``LossyScheduler`` crash windows with the strict policy, and stall
   (not fail) with the ``"starve"`` policy.
3. **Lossy scenarios end to end** — a sweep spec with
   ``scheduler=lossy`` and nonzero ``drop_rate`` runs through
   ``python -m repro.cli sweep``, and the dataset/shard cache keeps the
   streamed JSONL byte-identical.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
)
from repro.agreement.base import AgreementProtocol
from repro.byzantine.sign_flip import SignFlipAttack
from repro.cli import main as cli_main
from repro.engine import LossyScheduler
from repro.io.results import history_to_dict
from repro.network.delivery import full_broadcast_plan
from repro.learning.experiment import (
    ExperimentConfig,
    clear_data_cache,
    data_cache_stats,
    run_experiment,
)

FIXTURES = Path(__file__).parent / "fixtures" / "equivalence_pre_refactor.json"


def small_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="uniform",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=6,
        num_byzantine=1,
        rounds=3,
        num_samples=240,
        batch_size=8,
        learning_rate=0.1,
        mlp_hidden=(16, 8),
        seed=0,
    )
    return base.with_overrides(**overrides)


def json_round_trip(data):
    return json.loads(json.dumps(data))


class TestPinnedFixtures:
    """The synchronous path is bitwise-identical to the pre-refactor code."""

    @pytest.fixture(scope="class")
    def fixture_payload(self):
        return json.loads(FIXTURES.read_text())

    @pytest.mark.parametrize(
        "label, overrides",
        [
            ("centralized/box-geom/sign-flip", {}),
            ("centralized/krum/crash", {"aggregation": "krum", "attack": "crash"}),
            ("decentralized/box-geom/sign-flip", {"setting": "decentralized", "rounds": 2}),
            (
                "decentralized/md-mean/none",
                {
                    "setting": "decentralized", "rounds": 2, "aggregation": "md-mean",
                    "attack": None, "num_byzantine": 0,
                },
            ),
        ],
    )
    def test_trainer_history_bitwise(self, fixture_payload, label, overrides):
        history = run_experiment(small_config(**overrides))
        assert json_round_trip(history_to_dict(history)) == fixture_payload["histories"][label]

    def test_agreement_trace_bitwise(self, fixture_payload):
        reference = fixture_payload["agreement"]
        rng = np.random.default_rng(reference["inputs_seed"])
        algorithm = HyperboxGeometricMedianAgreement(7, 1)
        protocol = AgreementProtocol(
            algorithm, byzantine=(6,), attack=SignFlipAttack(), seed=7
        )
        result = protocol.run(rng.normal(size=(6, 4)), rounds=3)
        assert json_round_trip(result.final_matrix().tolist()) == reference["final_matrix"]
        assert json_round_trip(result.diameter_trace()) == reference["diameter_trace"]

    def test_synchronous_history_dict_layout_unchanged(self):
        # The wait-condition / delivery-trace machinery must leave the
        # synchronous serialisation untouched: no network_stats, no
        # delivery_trace key, same field set as the pinned fixtures.
        history = run_experiment(small_config())
        data = history_to_dict(history)
        assert "network_stats" not in data
        assert "delivery_trace" not in data


class TestAsynchronousEndToEnd:
    """The event-driven scheduler runs every consumer with explicit waits."""

    def _async_config(self, **overrides):
        overrides = {
            "scheduler": "asynchronous", "wait_timeout": 2.0, "burstiness": 0.2,
            "rounds": 2, **overrides,
        }
        return small_config(**overrides)

    def test_agreement_protocol_contracts(self):
        from repro.engine import AsynchronousScheduler

        n, t = 7, 2
        algorithm = HyperboxMeanAgreement(n, t)
        engine = AsynchronousScheduler(
            n, byzantine=[6], timeout_rounds=2.0, burstiness=0.3, seed=4
        )
        protocol = AgreementProtocol(
            algorithm, byzantine=(6,), attack=SignFlipAttack(), engine=engine
        )
        # The protocol installed its quorum wait condition on the engine.
        assert engine.wait.quorum and engine.wait.count is None
        inputs = np.random.default_rng(5).normal(size=(n - 1, 3))
        result = protocol.run(inputs, rounds=5)
        trace = result.diameter_trace()
        assert trace[-1] < trace[0]
        assert engine.stats["delivered"] > 0

    def test_both_trainers_run(self):
        for setting, rounds in (("centralized", 2), ("decentralized", 2)):
            history = run_experiment(self._async_config(setting=setting, rounds=rounds))
            assert history.rounds == rounds
            assert history.network_stats["sent"] > 0
            assert history.network_stats["dropped"] == 0  # asynchrony loses nothing
            assert history.delivery_trace  # per-round rows recorded
            assert all("round" in row for row in history.delivery_trace)
            # Cumulative counters equal the trace totals (per counter).
            for key in ("sent", "delivered", "delayed"):
                assert history.network_stats[key] == sum(
                    row.get(key, 0) for row in history.delivery_trace
                )

    def test_wait_count_override_reaches_engine(self):
        from repro.learning.experiment import _make_engine

        config = self._async_config(setting="decentralized", wait_count=3)
        engine = _make_engine(config, config.num_clients, (5,))
        assert engine.wait.count == 3  # the config-pinned count arrived
        # A consumer's quorum default must not clobber the pinned count.
        algorithm = HyperboxMeanAgreement(config.num_clients, 1)
        AgreementProtocol(algorithm, byzantine=(5,), engine=engine)
        assert engine.wait.count == 3 and engine.wait.quorum
        history = run_experiment(config)
        assert history.rounds == 2  # and the pinned count still trains

    def test_adaptive_delay_attack_end_to_end(self):
        for setting in ("decentralized", "centralized"):
            history = run_experiment(
                self._async_config(setting=setting, attack="adaptive-delay")
            )
            assert history.attack == "adaptive-delay"
            assert history.rounds == 2

    def test_star_exchange_honours_attack_delays(self):
        # Regression: attacks state lags per honest receiver, but the
        # centralized exchange has a single client -> server link — the
        # strongest requested lag must reach the server delivery instead
        # of being silently voided by the topology mismatch.
        from repro.aggregation.registry import make_rule
        from repro.engine import PartiallySynchronousScheduler
        from repro.learning.centralized import CentralizedTrainer
        from repro.learning.experiment import build_experiment
        from repro.nn.optimizers import SGD

        config = small_config(attack="selective-delay",
                              attack_kwargs={"delay": 2}, rounds=3)
        built = build_experiment(config)
        byz = tuple(c.client_id for c in built.clients if c.is_byzantine)
        # delay_prob=0: honest links deliver immediately, so any lag in
        # the server inbox is the adversary's pinned request.
        engine = PartiallySynchronousScheduler(
            config.num_clients + 1, byz, max_delay=2, delay_prob=0.0, seed=0,
            require_full_broadcast=False,
        )
        trainer = CentralizedTrainer(
            built.global_model, built.clients, make_rule("box-geom", n=6, t=1),
            built.test_data, optimizer=SGD(0.1, total_rounds=3), engine=engine,
        )
        trainer.train(3)
        server = trainer.server_node
        inboxes = [result.inboxes[server] for result in engine.history]
        byz_id = byz[0]
        # Round 0: the Byzantine gradient is held back by the pinned lag...
        assert byz_id not in [m.sender for m in inboxes[0]]
        # ...and arrives exactly 2 rounds later, tagged with its send round.
        assert any(m.sender == byz_id and m.round_index == 0 for m in inboxes[2])

    def test_history_round_trips_with_trace(self):
        from repro.io.results import history_from_dict

        history = run_experiment(self._async_config())
        restored = history_from_dict(json_round_trip(history_to_dict(history)))
        assert restored.delivery_trace == history.delivery_trace
        assert restored.network_stats == history.network_stats

    def test_cli_sweep_over_burstiness(self, tmp_path, capsys):
        spec = {
            "base": {
                "setting": "centralized",
                "heterogeneity": "uniform",
                "aggregation": "box-geom",
                "attack": "sign-flip",
                "num_clients": 6,
                "num_byzantine": 1,
                "rounds": 2,
                "num_samples": 240,
                "batch_size": 8,
                "mlp_hidden": [16, 8],
                "seed": 0,
                "scheduler": "asynchronous",
                "wait_timeout": 2.0,
            },
            "axes": {"burstiness": [0.0, 0.4]},
        }
        spec_path = tmp_path / "async_spec.json"
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rows.jsonl"
        code = cli_main(["sweep", str(spec_path), "--output", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2
        for row in rows:
            assert row["config"]["scheduler"] == "asynchronous"
            assert row["summary"]["network"]["sent"] > 0
            assert row["summary"]["trace"]["rounds"] > 0
            assert row["history"]["delivery_trace"]
        # The summary table surfaces the per-round trace columns.
        table = capsys.readouterr().out
        assert "wrst%" in table and "late" in table


class TestCrashQuorumInteraction:
    def test_require_quorum_fires_inside_crash_window(self):
        n = 5
        engine = LossyScheduler(n, crash_schedule=[(1, 1, 3)], seed=0)
        engine.require_quorum(n - 1)  # strict policy
        values = {i: np.full(2, float(i)) for i in range(n)}
        plan = lambda node, _r: full_broadcast_plan(node, values[node])
        engine.run_round(0, plan)  # before the window: fine
        with pytest.raises(RuntimeError, match="quorum"):
            engine.run_round(1, plan)

    def test_protocol_survives_crash_window_with_starve_policy(self):
        n, t = 7, 2
        algorithm = HyperboxMeanAgreement(n, t)
        engine = LossyScheduler(n, byzantine=[6], crash_schedule=[(0, 0, 2)], seed=3)
        protocol = AgreementProtocol(algorithm, byzantine=(6,), engine=engine)
        inputs = np.random.default_rng(5).normal(size=(n - 1, 3))
        result = protocol.run(inputs, rounds=4)
        # Node 0 was down for the first two sub-rounds: it stalls on its
        # input vector there instead of aborting the run...
        np.testing.assert_array_equal(result.per_round[0][0], inputs[0])
        np.testing.assert_array_equal(result.per_round[1][0], inputs[0])
        # ...and after recovery the exchange still contracts.
        trace = result.diameter_trace()
        assert trace[-1] < trace[0]

    def test_trainer_survives_crash_window(self):
        history = run_experiment(
            small_config(
                scheduler="lossy", drop_rate=0.1, crash_schedule=((2, 0, 2),), rounds=2
            )
        )
        assert history.rounds == 2
        # The crashed client is a *sender* in the star exchange: its
        # would-be sends are suppressed (never sent), not crash-omitted.
        assert history.network_stats["suppressed"] > 0
        assert history.network_stats["sent"] == (
            history.network_stats["delivered"]
            + history.network_stats["dropped"]
            + history.network_stats["crash_omitted"]
        )


class TestLossyScenarioEndToEnd:
    def _spec(self, tmp_path: Path) -> Path:
        spec = {
            "base": {
                "setting": "centralized",
                "heterogeneity": "uniform",
                "aggregation": "box-geom",
                "attack": "sign-flip",
                "num_clients": 6,
                "num_byzantine": 1,
                "rounds": 2,
                "num_samples": 240,
                "batch_size": 8,
                "mlp_hidden": [16, 8],
                "seed": 0,
            },
            "axes": {
                "scheduler": ["synchronous", "lossy"],
                "drop_rate": [0.0, 0.2],
            },
        }
        path = tmp_path / "lossy_spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_cli_sweep_with_lossy_scheduler(self, tmp_path, capsys):
        # scheduler x drop_rate contains two invalid combinations
        # (synchronous with loss, lossy without); prune them up front so
        # the spec mirrors how a real mixed-scheduler sweep is written.
        spec_path = self._spec(tmp_path)
        spec = json.loads(spec_path.read_text())
        spec["axes"] = {"scheduler": ["lossy"], "drop_rate": [0.2, 0.4]}
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rows.jsonl"
        code = cli_main(["sweep", str(spec_path), "--output", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2
        for row in rows:
            assert row["config"]["scheduler"] == "lossy"
            assert row["summary"]["network"]["dropped"] > 0
            assert row["history"]["network_stats"]["sent"] > 0
        # The summary table surfaces the delivery rate column.
        assert "deliv%" in capsys.readouterr().out

    def test_invalid_scheduler_combination_fails_fast(self, tmp_path):
        code = cli_main(["sweep", str(self._spec(tmp_path)), "--dry-run"])
        assert code == 2  # synchronous cells with drop_rate 0.2 are invalid

    def test_crash_schedule_axis_round_trips(self):
        from repro.sweep.grid import ScenarioGrid, config_from_dict, config_to_dict

        grid = ScenarioGrid(
            small_config(scheduler="lossy", drop_rate=0.1),
            {"crash_schedule": [[], [[2, 0, 2]], [[1, 0, 1], [3, 2, 4]]]},
        )
        cells = grid.cells()
        assert [cell.cell_id for cell in cells] == [
            "crash_schedule=",
            "crash_schedule=2-0-2",
            "crash_schedule=1-0-1x3-2-4",
        ]
        for cell in cells:
            round_tripped = config_from_dict(json_round_trip(config_to_dict(cell.config)))
            assert round_tripped == cell.config


class TestDatasetCacheReuse:
    def test_cells_sharing_data_axes_hit_the_cache(self):
        clear_data_cache()
        run_experiment(small_config(rounds=1))
        first = data_cache_stats()
        assert first["hits"] == 0 and first["misses"] == 2
        # Same data axes, different aggregation rule: both builds reuse.
        run_experiment(small_config(rounds=1, aggregation="krum"))
        second = data_cache_stats()
        assert second["hits"] == 2 and second["misses"] == 2

    def test_different_seed_misses(self):
        clear_data_cache()
        run_experiment(small_config(rounds=1))
        run_experiment(small_config(rounds=1, seed=1))
        assert data_cache_stats()["hits"] == 0

    def test_jsonl_output_identical_hot_and_cold(self, tmp_path):
        from repro.sweep import ScenarioGrid, SweepRunner

        grid = ScenarioGrid(
            small_config(rounds=1),
            {"aggregation": ["mean", "krum"]},
            derive_seeds=False,  # shared seed => shared shards across cells
        )
        clear_data_cache()
        cold = tmp_path / "cold.jsonl"
        SweepRunner(grid, output_path=cold, resume=False).run()
        assert data_cache_stats()["hits"] > 0  # second cell reused the shards
        hot = tmp_path / "hot.jsonl"
        SweepRunner(grid, output_path=hot, resume=False).run()
        assert cold.read_bytes() == hot.read_bytes()
