"""Round-engine acceptance tests.

Three contracts of the scheduler-pluggable refactor:

1. **Bitwise equivalence** — the ``SynchronousScheduler`` path must
   reproduce the pre-refactor trainers and agreement protocol exactly
   for fixed seeds.  The reference numbers live in
   ``tests/fixtures/equivalence_pre_refactor.json``, generated at the
   last pre-refactor commit (see the sibling generator script); floats
   survive the JSON round trip losslessly, so ``==`` is bitwise.
2. **Crash × quorum interaction** — ``require_quorum`` must fire under
   ``LossyScheduler`` crash windows with the strict policy, and stall
   (not fail) with the ``"starve"`` policy.
3. **Lossy scenarios end to end** — a sweep spec with
   ``scheduler=lossy`` and nonzero ``drop_rate`` runs through
   ``python -m repro.cli sweep``, and the dataset/shard cache keeps the
   streamed JSONL byte-identical.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
)
from repro.agreement.base import AgreementProtocol
from repro.byzantine.sign_flip import SignFlipAttack
from repro.cli import main as cli_main
from repro.engine import LossyScheduler
from repro.io.results import history_to_dict
from repro.network.delivery import full_broadcast_plan
from repro.learning.experiment import (
    ExperimentConfig,
    clear_data_cache,
    data_cache_stats,
    run_experiment,
)

FIXTURES = Path(__file__).parent / "fixtures" / "equivalence_pre_refactor.json"


def small_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="uniform",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=6,
        num_byzantine=1,
        rounds=3,
        num_samples=240,
        batch_size=8,
        learning_rate=0.1,
        mlp_hidden=(16, 8),
        seed=0,
    )
    return base.with_overrides(**overrides)


def json_round_trip(data):
    return json.loads(json.dumps(data))


class TestPinnedFixtures:
    """The synchronous path is bitwise-identical to the pre-refactor code."""

    @pytest.fixture(scope="class")
    def fixture_payload(self):
        return json.loads(FIXTURES.read_text())

    @pytest.mark.parametrize(
        "label, overrides",
        [
            ("centralized/box-geom/sign-flip", {}),
            ("centralized/krum/crash", {"aggregation": "krum", "attack": "crash"}),
            ("decentralized/box-geom/sign-flip", {"setting": "decentralized", "rounds": 2}),
            (
                "decentralized/md-mean/none",
                {
                    "setting": "decentralized", "rounds": 2, "aggregation": "md-mean",
                    "attack": None, "num_byzantine": 0,
                },
            ),
        ],
    )
    def test_trainer_history_bitwise(self, fixture_payload, label, overrides):
        history = run_experiment(small_config(**overrides))
        assert json_round_trip(history_to_dict(history)) == fixture_payload["histories"][label]

    def test_agreement_trace_bitwise(self, fixture_payload):
        reference = fixture_payload["agreement"]
        rng = np.random.default_rng(reference["inputs_seed"])
        algorithm = HyperboxGeometricMedianAgreement(7, 1)
        protocol = AgreementProtocol(
            algorithm, byzantine=(6,), attack=SignFlipAttack(), seed=7
        )
        result = protocol.run(rng.normal(size=(6, 4)), rounds=3)
        assert json_round_trip(result.final_matrix().tolist()) == reference["final_matrix"]
        assert json_round_trip(result.diameter_trace()) == reference["diameter_trace"]


class TestCrashQuorumInteraction:
    def test_require_quorum_fires_inside_crash_window(self):
        n = 5
        engine = LossyScheduler(n, crash_schedule=[(1, 1, 3)], seed=0)
        engine.require_quorum(n - 1)  # strict policy
        values = {i: np.full(2, float(i)) for i in range(n)}
        plan = lambda node, _r: full_broadcast_plan(node, values[node])
        engine.run_round(0, plan)  # before the window: fine
        with pytest.raises(RuntimeError, match="quorum"):
            engine.run_round(1, plan)

    def test_protocol_survives_crash_window_with_starve_policy(self):
        n, t = 7, 2
        algorithm = HyperboxMeanAgreement(n, t)
        engine = LossyScheduler(n, byzantine=[6], crash_schedule=[(0, 0, 2)], seed=3)
        protocol = AgreementProtocol(algorithm, byzantine=(6,), engine=engine)
        inputs = np.random.default_rng(5).normal(size=(n - 1, 3))
        result = protocol.run(inputs, rounds=4)
        # Node 0 was down for the first two sub-rounds: it stalls on its
        # input vector there instead of aborting the run...
        np.testing.assert_array_equal(result.per_round[0][0], inputs[0])
        np.testing.assert_array_equal(result.per_round[1][0], inputs[0])
        # ...and after recovery the exchange still contracts.
        trace = result.diameter_trace()
        assert trace[-1] < trace[0]

    def test_trainer_survives_crash_window(self):
        history = run_experiment(
            small_config(
                scheduler="lossy", drop_rate=0.1, crash_schedule=((2, 0, 2),), rounds=2
            )
        )
        assert history.rounds == 2
        assert history.network_stats["crash_omitted"] > 0


class TestLossyScenarioEndToEnd:
    def _spec(self, tmp_path: Path) -> Path:
        spec = {
            "base": {
                "setting": "centralized",
                "heterogeneity": "uniform",
                "aggregation": "box-geom",
                "attack": "sign-flip",
                "num_clients": 6,
                "num_byzantine": 1,
                "rounds": 2,
                "num_samples": 240,
                "batch_size": 8,
                "mlp_hidden": [16, 8],
                "seed": 0,
            },
            "axes": {
                "scheduler": ["synchronous", "lossy"],
                "drop_rate": [0.0, 0.2],
            },
        }
        path = tmp_path / "lossy_spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_cli_sweep_with_lossy_scheduler(self, tmp_path, capsys):
        # scheduler x drop_rate contains two invalid combinations
        # (synchronous with loss, lossy without); prune them up front so
        # the spec mirrors how a real mixed-scheduler sweep is written.
        spec_path = self._spec(tmp_path)
        spec = json.loads(spec_path.read_text())
        spec["axes"] = {"scheduler": ["lossy"], "drop_rate": [0.2, 0.4]}
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rows.jsonl"
        code = cli_main(["sweep", str(spec_path), "--output", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2
        for row in rows:
            assert row["config"]["scheduler"] == "lossy"
            assert row["summary"]["network"]["dropped"] > 0
            assert row["history"]["network_stats"]["sent"] > 0
        # The summary table surfaces the delivery rate column.
        assert "deliv%" in capsys.readouterr().out

    def test_invalid_scheduler_combination_fails_fast(self, tmp_path):
        code = cli_main(["sweep", str(self._spec(tmp_path)), "--dry-run"])
        assert code == 2  # synchronous cells with drop_rate 0.2 are invalid

    def test_crash_schedule_axis_round_trips(self):
        from repro.sweep.grid import ScenarioGrid, config_from_dict, config_to_dict

        grid = ScenarioGrid(
            small_config(scheduler="lossy", drop_rate=0.1),
            {"crash_schedule": [[], [[2, 0, 2]], [[1, 0, 1], [3, 2, 4]]]},
        )
        cells = grid.cells()
        assert [cell.cell_id for cell in cells] == [
            "crash_schedule=",
            "crash_schedule=2-0-2",
            "crash_schedule=1-0-1x3-2-4",
        ]
        for cell in cells:
            round_tripped = config_from_dict(json_round_trip(config_to_dict(cell.config)))
            assert round_tripped == cell.config


class TestDatasetCacheReuse:
    def test_cells_sharing_data_axes_hit_the_cache(self):
        clear_data_cache()
        run_experiment(small_config(rounds=1))
        first = data_cache_stats()
        assert first["hits"] == 0 and first["misses"] == 2
        # Same data axes, different aggregation rule: both builds reuse.
        run_experiment(small_config(rounds=1, aggregation="krum"))
        second = data_cache_stats()
        assert second["hits"] == 2 and second["misses"] == 2

    def test_different_seed_misses(self):
        clear_data_cache()
        run_experiment(small_config(rounds=1))
        run_experiment(small_config(rounds=1, seed=1))
        assert data_cache_stats()["hits"] == 0

    def test_jsonl_output_identical_hot_and_cold(self, tmp_path):
        from repro.sweep import ScenarioGrid, SweepRunner

        grid = ScenarioGrid(
            small_config(rounds=1),
            {"aggregation": ["mean", "krum"]},
            derive_seeds=False,  # shared seed => shared shards across cells
        )
        clear_data_cache()
        cold = tmp_path / "cold.jsonl"
        SweepRunner(grid, output_path=cold, resume=False).run()
        assert data_cache_stats()["hits"] > 0  # second cell reused the shards
        hot = tmp_path / "hot.jsonl"
        SweepRunner(grid, output_path=hot, resume=False).run()
        assert cold.read_bytes() == hot.read_bytes()
