"""Integration tests tying the full stack together.

Each test is a miniature version of one of the paper's experiments,
sized to run in a few seconds: it exercises dataset generation,
partitioning, the NumPy models, the attack, the network simulation,
the agreement/aggregation rules and the training loops in one pass.
"""

import numpy as np
import pytest

from repro.learning.experiment import ExperimentConfig, run_experiment


def config(**overrides):
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="mild",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=6,
        num_byzantine=1,
        rounds=4,
        num_samples=240,
        batch_size=8,
        learning_rate=0.15,
        mlp_hidden=(16, 8),
        seed=1,
    )
    return base.with_overrides(**overrides)


class TestCentralizedEndToEnd:
    @pytest.mark.parametrize("heterogeneity", ["uniform", "mild", "extreme"])
    def test_fig1_style_run(self, heterogeneity):
        history = run_experiment(config(heterogeneity=heterogeneity))
        assert history.rounds == 4
        assert history.heterogeneity == heterogeneity
        assert all(np.isfinite(a) for a in history.accuracies())

    @pytest.mark.parametrize(
        "rule", ["md-mean", "md-geom", "box-mean", "box-geom", "krum", "multi-krum"]
    )
    def test_fig2a_style_rules(self, rule):
        history = run_experiment(
            config(heterogeneity="extreme", num_byzantine=1, aggregation=rule, rounds=2)
        )
        assert history.rounds == 2

    def test_fig2b_style_cifarnet(self):
        history = run_experiment(
            config(dataset="cifar10", heterogeneity="mild", rounds=1, num_samples=240, batch_size=4)
        )
        assert history.rounds == 1

    def test_two_byzantine_clients(self):
        history = run_experiment(config(num_byzantine=2, byzantine_tolerance=2, rounds=2))
        assert history.num_byzantine == 2

    def test_reproducible_given_seed(self):
        a = run_experiment(config(rounds=2))
        b = run_experiment(config(rounds=2))
        np.testing.assert_allclose(a.accuracies(), b.accuracies())

    def test_seed_changes_trajectory(self):
        a = run_experiment(config(rounds=2))
        b = run_experiment(config(rounds=2, seed=9))
        assert not np.allclose(a.accuracies(), b.accuracies())


class TestDecentralizedEndToEnd:
    @pytest.mark.parametrize("rule", ["md-geom", "box-geom", "md-mean", "box-mean"])
    def test_fig3_style_run(self, rule):
        history = run_experiment(
            config(setting="decentralized", aggregation=rule, rounds=2)
        )
        assert history.rounds == 2
        assert history.setting == "decentralized"
        last = history.records[-1]
        assert len(last.per_client_accuracy) == 5
        assert last.gradient_disagreement is not None and last.gradient_disagreement >= 0.0

    def test_crash_attack_decentralized(self):
        history = run_experiment(
            config(setting="decentralized", attack="crash", rounds=2)
        )
        assert history.rounds == 2

    def test_honest_clients_stay_in_sync_with_box_geom(self):
        history = run_experiment(
            config(setting="decentralized", aggregation="box-geom", rounds=3)
        )
        last = history.records[-1]
        accs = np.array(list(last.per_client_accuracy.values()))
        # Box agreement keeps the aggregated gradients (and hence models)
        # nearly identical across honest clients.
        assert accs.max() - accs.min() <= 0.25


class TestAttackZoo:
    @pytest.mark.parametrize(
        "attack", ["sign-flip", "crash", "gaussian-noise", "random-vector", "magnitude",
                    "opposite-mean", "label-flip"]
    )
    def test_every_attack_runs_centralized(self, attack):
        history = run_experiment(config(attack=attack, rounds=1))
        assert history.rounds == 1
        assert history.attack == attack
