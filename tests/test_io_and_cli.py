"""Tests for result persistence (repro.io) and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.results import (
    history_from_dict,
    history_to_dict,
    load_histories,
    save_histories,
)
from repro.learning.history import RoundRecord, TrainingHistory


def make_history():
    history = TrainingHistory(
        setting="decentralized", aggregation="box-geom", attack="sign-flip",
        heterogeneity="mild", num_clients=7, num_byzantine=1,
    )
    history.append(
        RoundRecord(round_index=0, accuracy=0.2, loss=2.0,
                    per_client_accuracy={0: 0.2, 1: 0.3}, gradient_disagreement=1e-3)
    )
    history.append(RoundRecord(round_index=1, accuracy=0.4, loss=1.5))
    return history


class TestHistorySerialization:
    def test_round_trip(self):
        history = make_history()
        restored = history_from_dict(history_to_dict(history))
        assert restored.setting == history.setting
        assert restored.aggregation == history.aggregation
        assert restored.rounds == history.rounds
        assert restored.accuracies() == history.accuracies()
        assert restored.records[0].per_client_accuracy == {0: 0.2, 1: 0.3}
        assert restored.records[0].gradient_disagreement == pytest.approx(1e-3)
        assert restored.records[1].gradient_disagreement is None

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            history_from_dict({"setting": "centralized"})

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "results" / "run.json"
        histories = {"box-geom": make_history()}
        written = save_histories(histories, path)
        assert written.exists()
        payload = json.loads(written.read_text())
        assert "box-geom" in payload
        loaded = load_histories(written)
        assert loaded["box-geom"].accuracies() == histories["box-geom"].accuracies()

    def test_load_rejects_non_mapping(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_histories(path)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--rounds", "2"])
        assert args.command == "run"
        args = parser.parse_args(["compare", "--rules", "mean", "box-geom"])
        assert args.rules == ["mean", "box-geom"]
        args = parser.parse_args(["theory", "--rounds", "3"])
        assert args.rounds == 3

    def test_run_command(self, capsys, tmp_path):
        save_path = tmp_path / "history.json"
        code = main([
            "run", "--aggregation", "box-geom", "--rounds", "2", "--clients", "6",
            "--samples", "240", "--batch-size", "8", "--save", str(save_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert save_path.exists()
        loaded = load_histories(save_path)
        assert "box-geom" in loaded and loaded["box-geom"].rounds == 2

    def test_run_command_no_attack(self, capsys):
        code = main([
            "run", "--aggregation", "mean", "--attack", "none", "--rounds", "1",
            "--clients", "6", "--samples", "240", "--batch-size", "8",
        ])
        assert code == 0
        assert "accuracy per round" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--rules", "mean", "box-geom", "--rounds", "1",
            "--clients", "6", "--samples", "240", "--batch-size", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean" in out and "box-geom" in out and "verdict" in out

    def test_theory_command(self, capsys):
        code = main(["theory", "--rounds", "3", "--trials", "3", "--dimension", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "safe-area" in out and "box-geom" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliSweep:
    SPEC = {
        "base": {
            "num_clients": 4, "num_byzantine": 1, "rounds": 1, "num_samples": 40,
            "batch_size": 8, "mlp_hidden": [8, 4], "seed": 5,
        },
        "axes": {"aggregation": ["mean", "krum"]},
    }

    def _write_spec(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        return spec_path

    def test_dry_run_lists_cells(self, capsys, tmp_path):
        code = main(["sweep", str(self._write_spec(tmp_path)), "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "aggregation=mean" in out and "aggregation=krum" in out

    def test_sweep_runs_and_streams_rows(self, capsys, tmp_path):
        out_path = tmp_path / "rows.jsonl"
        code = main(["sweep", str(self._write_spec(tmp_path)),
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "final" in out and "aggregation" in out
        rows = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert [row["cell_id"] for row in rows] == [
            "aggregation=mean", "aggregation=krum",
        ]
        # Re-running resumes: every cell is reported as cached.
        code = main(["sweep", str(self._write_spec(tmp_path)),
                     "--output", str(out_path)])
        assert code == 0
        assert capsys.readouterr().out.count("cached") == 2

    def test_missing_spec_errors(self, capsys, tmp_path):
        assert main(["sweep", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_spec_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_invalid_spec_content_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad_axis.json"
        bad.write_text(json.dumps({"axes": {"bogus_axis": [1]}}))
        assert main(["sweep", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid sweep spec" in err and "bogus_axis" in err


class TestCliDtypeAxis:
    """The precision tier is a first-class experiment and sweep axis."""

    SPEC = {
        "base": {
            "num_clients": 4, "num_byzantine": 1, "rounds": 1, "num_samples": 40,
            "batch_size": 8, "mlp_hidden": [8, 4], "seed": 5,
            "aggregation": "box-geom",
        },
        "axes": {"dtype": ["float64", "float32"]},
    }

    def test_run_accepts_dtype_flag(self, capsys):
        code = main([
            "run", "--aggregation", "mean", "--dtype", "float32",
            "--clients", "4", "--byzantine", "1", "--rounds", "1",
            "--samples", "40", "--batch-size", "8",
        ])
        assert code == 0
        assert "final accuracy" in capsys.readouterr().out

    def test_sweep_and_analyze_group_by_dtype(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        out_path = tmp_path / "rows.jsonl"
        code = main(["sweep", str(spec_path), "--output", str(out_path)])
        assert code == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert [row["cell_id"] for row in rows] == [
            "dtype=float64", "dtype=float32",
        ]
        assert [row["axes"]["dtype"] for row in rows] == ["float64", "float32"]

        code = main(["analyze", str(out_path), "--group-by", "dtype",
                     "--format", "table"])
        assert code == 0
        out = capsys.readouterr().out
        assert "float64" in out and "float32" in out
