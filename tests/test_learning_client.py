"""Tests for the Client abstraction and training history records."""

import numpy as np
import pytest

from repro.byzantine.sign_flip import SignFlipAttack
from repro.data.datasets import make_synthetic_mnist
from repro.learning.client import Client
from repro.learning.history import RoundRecord, TrainingHistory
from repro.nn.architectures import build_mlp


@pytest.fixture
def client(tiny_dataset):
    model = build_mlp(tiny_dataset.feature_dim, hidden_sizes=(16,), num_classes=10, seed=0)
    return Client(0, tiny_dataset, model, batch_size=8, seed=0)


class TestClient:
    def test_honest_by_default(self, client):
        assert not client.is_byzantine

    def test_byzantine_with_attack(self, tiny_dataset):
        model = build_mlp(tiny_dataset.feature_dim, hidden_sizes=(16,), num_classes=10, seed=0)
        byz = Client(1, tiny_dataset, model, attack=SignFlipAttack(), seed=0)
        assert byz.is_byzantine

    def test_compute_gradient_shapes(self, client):
        params = client.local_parameters()
        loss, grad = client.compute_gradient(params)
        assert np.isfinite(loss)
        assert grad.shape == params.shape
        assert client.last_loss == loss

    def test_gradient_loads_given_parameters(self, client):
        zeros = np.zeros_like(client.local_parameters())
        client.compute_gradient(zeros)
        np.testing.assert_allclose(client.local_parameters(), zeros)

    def test_apply_update(self, client):
        new = np.ones_like(client.local_parameters())
        client.apply_update(new)
        np.testing.assert_allclose(client.local_parameters(), new)

    def test_evaluate_accuracy_range(self, client, tiny_dataset):
        acc = client.evaluate_accuracy(tiny_dataset.images[:50], tiny_dataset.labels[:50])
        assert 0.0 <= acc <= 1.0

    def test_negative_id_rejected(self, tiny_dataset):
        model = build_mlp(tiny_dataset.feature_dim, hidden_sizes=(8,), num_classes=10)
        with pytest.raises(ValueError):
            Client(-1, tiny_dataset, model)

    def test_stochastic_gradients_differ_between_calls(self, client):
        params = client.local_parameters()
        _, g1 = client.compute_gradient(params)
        _, g2 = client.compute_gradient(params)
        assert not np.allclose(g1, g2)

    def test_cifar_style_client_without_flatten(self):
        from repro.data.datasets import make_synthetic_cifar10
        from repro.nn.architectures import build_cifarnet

        data = make_synthetic_cifar10(60, seed=0)
        model = build_cifarnet((32, 32, 3), 10, conv_channels=(2, 4), dense_width=8, seed=0)
        client = Client(0, data, model, batch_size=4, flatten_inputs=False, seed=0)
        loss, grad = client.compute_gradient(client.local_parameters())
        assert np.isfinite(loss) and grad.shape == (model.num_parameters,)


class TestTrainingHistory:
    def make_history(self):
        history = TrainingHistory(
            setting="centralized", aggregation="box-geom", attack="sign-flip",
            heterogeneity="mild", num_clients=10, num_byzantine=1,
        )
        for r, acc in enumerate([0.2, 0.5, 0.4]):
            history.append(RoundRecord(round_index=r, accuracy=acc, loss=1.0 - acc))
        return history

    def test_traces(self):
        history = self.make_history()
        assert history.accuracies() == [0.2, 0.5, 0.4]
        assert history.losses() == [pytest.approx(0.8), pytest.approx(0.5), pytest.approx(0.6)]

    def test_final_and_best(self):
        history = self.make_history()
        assert history.final_accuracy() == pytest.approx(0.4)
        assert history.best_accuracy() == pytest.approx(0.5)

    def test_out_of_order_append_rejected(self):
        history = self.make_history()
        with pytest.raises(ValueError):
            history.append(RoundRecord(round_index=0, accuracy=0.1, loss=1.0))

    def test_empty_history_nan(self):
        history = TrainingHistory(
            setting="centralized", aggregation="mean", attack=None,
            heterogeneity="uniform", num_clients=2, num_byzantine=0,
        )
        assert np.isnan(history.final_accuracy())
        assert np.isnan(history.best_accuracy())

    def test_summary_fields(self):
        summary = self.make_history().summary()
        assert summary["aggregation"] == "box-geom"
        assert summary["rounds"] == 3
        assert summary["final_accuracy"] == pytest.approx(0.4)
