"""Tests for the centralized and decentralized training loops.

These are behavioural, laptop-fast versions of the paper's experiments:
tiny synthetic datasets, few rounds, small models.  They check wiring
(shapes, bookkeeping, attack plumbing) and coarse learning behaviour
(robust rules keep learning under attack, the plain mean does not).
"""

import numpy as np
import pytest

from repro.aggregation.registry import make_rule
from repro.agreement.registry import make_algorithm
from repro.learning.centralized import CentralizedTrainer
from repro.learning.decentralized import DecentralizedTrainer, default_subround_schedule
from repro.learning.experiment import (
    ExperimentConfig,
    build_experiment,
    run_centralized_experiment,
    run_decentralized_experiment,
    run_experiment,
)
from repro.nn.optimizers import SGD


def small_config(**overrides):
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="uniform",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=6,
        num_byzantine=1,
        rounds=3,
        num_samples=240,
        batch_size=8,
        learning_rate=0.1,
        mlp_hidden=(16, 8),
        seed=0,
    )
    return base.with_overrides(**overrides)


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.tolerance == 1

    def test_invalid_setting(self):
        with pytest.raises(ValueError):
            ExperimentConfig(setting="federated")

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="imagenet")

    def test_invalid_heterogeneity(self):
        with pytest.raises(ValueError):
            ExperimentConfig(heterogeneity="spicy")

    def test_byzantine_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_clients=5, num_byzantine=5)

    def test_tolerance_override(self):
        config = ExperimentConfig(num_byzantine=0, byzantine_tolerance=2)
        assert config.tolerance == 2

    def test_with_overrides(self):
        config = small_config(rounds=7)
        assert config.rounds == 7


class TestBuildExperiment:
    def test_client_count_and_roles(self):
        built = build_experiment(small_config())
        assert len(built.clients) == 6
        byz = [c.client_id for c in built.clients if c.is_byzantine]
        assert byz == [5]

    def test_clients_start_from_global_weights(self):
        built = build_experiment(small_config())
        global_params = built.global_model.get_flat_parameters()
        for client in built.clients:
            np.testing.assert_allclose(client.local_parameters(), global_params)

    def test_no_attack_means_no_byzantine_behaviour(self):
        built = build_experiment(small_config(attack=None, num_byzantine=0))
        assert all(not c.is_byzantine for c in built.clients)

    def test_label_flip_poisons_byzantine_shard(self):
        config = small_config(attack="label-flip")
        built = build_experiment(config)
        byz_client = built.clients[-1]
        original_shard = built.client_shards[byz_client.client_id]
        assert not np.array_equal(byz_client.dataset.labels, original_shard.labels)

    def test_shards_cover_training_data(self):
        built = build_experiment(small_config())
        assert sum(len(s) for s in built.client_shards) == len(built.train_data)

    def test_cifar_config_builds_cnn(self):
        config = small_config(dataset="cifar10", num_samples=240)
        built = build_experiment(config)
        assert built.flatten_inputs is False
        assert built.global_model.name == "cifarnet"


class TestCentralizedTrainer:
    def test_history_shape(self):
        history = run_centralized_experiment(small_config())
        assert history.rounds == 3
        assert history.setting == "centralized"
        assert history.aggregation == "box-geom"
        assert history.attack == "sign-flip"
        assert all(0.0 <= acc <= 1.0 for acc in history.accuracies())

    def test_all_rules_run_one_round(self):
        for rule in ("mean", "geomedian", "krum", "multi-krum", "md-mean", "md-geom", "box-mean", "box-geom"):
            history = run_centralized_experiment(small_config(aggregation=rule, rounds=1))
            assert history.rounds == 1

    def test_crash_attack_with_missing_gradient(self):
        history = run_centralized_experiment(small_config(attack="crash", rounds=2))
        assert history.rounds == 2

    def test_record_every(self):
        built = build_experiment(small_config(rounds=4))
        trainer = CentralizedTrainer(
            built.global_model, built.clients, make_rule("box-geom", n=6, t=1),
            built.test_data, optimizer=SGD(0.1, total_rounds=4),
        )
        history = trainer.train(4, record_every=2)
        assert [r.round_index for r in history.records] == [1, 3]

    def test_invalid_rounds(self):
        built = build_experiment(small_config())
        trainer = CentralizedTrainer(
            built.global_model, built.clients, make_rule("mean", n=6, t=1), built.test_data
        )
        with pytest.raises(ValueError):
            trainer.train(0)

    def test_requires_clients(self):
        built = build_experiment(small_config())
        with pytest.raises(ValueError):
            CentralizedTrainer(built.global_model, [], make_rule("mean"), built.test_data)

    def test_robust_rule_learns_under_magnitude_attack(self):
        # A magnitude-inflation attacker destroys the plain mean (the
        # aggregate is dominated by the inflated gradient), while BOX-GEOM
        # keeps learning: its output never leaves the trusted hyperbox.
        probe = small_config(
            attack="magnitude", rounds=30, num_samples=480, batch_size=16,
            learning_rate=0.05,
        )
        robust = run_centralized_experiment(probe.with_overrides(aggregation="box-geom"))
        naive = run_centralized_experiment(probe.with_overrides(aggregation="mean"))
        assert robust.best_accuracy() > 0.2
        assert robust.final_accuracy() > naive.final_accuracy()
        assert robust.losses()[-1] < naive.losses()[-1]


class TestDecentralizedTrainer:
    def test_history_shape(self):
        history = run_decentralized_experiment(
            small_config(setting="decentralized", rounds=2)
        )
        assert history.rounds == 2
        assert history.setting == "decentralized"
        record = history.records[-1]
        assert len(record.per_client_accuracy) == 5  # honest clients only
        assert record.gradient_disagreement is not None

    def test_subround_schedule(self):
        assert default_subround_schedule(0) == 1
        assert default_subround_schedule(2) == 2
        assert default_subround_schedule(30) == 5
        with pytest.raises(ValueError):
            default_subround_schedule(-1)

    def test_agreement_n_mismatch_rejected(self):
        built = build_experiment(small_config(setting="decentralized"))
        algorithm = make_algorithm("box-geom", 8, 1)
        with pytest.raises(ValueError):
            DecentralizedTrainer(built.clients, algorithm, built.test_data)

    def test_too_many_byzantine_rejected(self):
        config = small_config(setting="decentralized", num_clients=6, num_byzantine=1)
        built = build_experiment(config)
        algorithm = make_algorithm("box-geom", 6, 1)
        # Manually make a second client Byzantine beyond the tolerance.
        from repro.byzantine.sign_flip import SignFlipAttack

        built.clients[0].attack = SignFlipAttack()
        with pytest.raises(ValueError):
            DecentralizedTrainer(built.clients, algorithm, built.test_data)

    def test_gradient_disagreement_small_for_box(self):
        history = run_decentralized_experiment(
            small_config(setting="decentralized", aggregation="box-geom", rounds=2)
        )
        last = history.records[-1]
        assert last.gradient_disagreement < 1.0


class TestRunExperimentDispatch:
    def test_dispatch_centralized(self):
        history = run_experiment(small_config(rounds=1))
        assert history.setting == "centralized"

    def test_dispatch_decentralized(self):
        history = run_experiment(small_config(setting="decentralized", rounds=1))
        assert history.setting == "decentralized"

    def test_wrong_runner_rejected(self):
        with pytest.raises(ValueError):
            run_centralized_experiment(small_config(setting="decentralized"))
        with pytest.raises(ValueError):
            run_decentralized_experiment(small_config(setting="centralized"))
