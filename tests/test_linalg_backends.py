"""Kernel-backend registry, selection, and cross-backend equivalence.

The backend layer (:mod:`repro.linalg.backends`) isolates the two hot
subset-kernel loops behind a strategy interface.  These tests pin the
registry contract — env-var selection, numpy fallback when numba is
missing, context-manager scoping — and check that every available
backend reproduces the numpy reference within its documented tier
(bitwise for diameter gathers, float32-style tolerance for the
Weiszfeld loop).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    KernelBackend,
    NumpyKernelBackend,
    available_kernel_backends,
    get_kernel_backend,
    make_kernel_backend,
    numba_available,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.linalg.distances import pairwise_distances
from repro.linalg.geometric_median import batched_geometric_median, geometric_median
from repro.linalg.precision import tolerance_tier
from repro.linalg.subset_kernels import subset_diameters, subset_index_matrix


@pytest.fixture(autouse=True)
def _reset_backend():
    """Every test starts and ends with no memoised backend.

    The memo is cleared directly (not via ``set_kernel_backend(None)``,
    which eagerly re-resolves) so a test that monkeypatches the env var
    to an invalid name does not explode during teardown.
    """
    import repro.linalg.backends as backends_module

    backends_module._active_backend = None
    yield
    backends_module._active_backend = None


def _problem(num_sets=12, s=5, d=7, seed=3):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(num_sets, s, d))
    w = np.ones((num_sets, s), dtype=np.float64)
    start = pts.mean(axis=1)
    return pts, w, start


# -- registry -----------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_kernel_backends()
        assert set(available_kernel_backends()) <= set(BACKEND_NAMES)

    def test_make_numpy(self):
        backend = make_kernel_backend("numpy")
        assert isinstance(backend, NumpyKernelBackend)
        assert backend.name == "numpy"
        assert backend.exact and not backend.compiled

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            make_kernel_backend("cublas")

    def test_name_normalised(self):
        assert make_kernel_backend("  NumPy ").name == "numpy"

    @pytest.mark.skipif(numba_available(), reason="numba installed: no fallback")
    def test_numba_falls_back_to_numpy_when_missing(self, caplog):
        with caplog.at_level("WARNING"):
            backend = make_kernel_backend("numba")
        assert isinstance(backend, NumpyKernelBackend)
        assert any("falling back" in record.message for record in caplog.records)

    @pytest.mark.skipif(not numba_available(), reason="needs numba")
    def test_numba_backend_constructs(self):
        backend = make_kernel_backend("numba")
        assert backend.name == "numba"
        assert backend.compiled and not backend.exact


# -- selection ----------------------------------------------------------------
class TestSelection:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_kernel_backend().name == "numpy"

    def test_env_unset_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_kernel_backend().name == "numpy"

    def test_env_bad_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_kernel_backend()

    def test_get_memoises_instance(self):
        assert get_kernel_backend() is get_kernel_backend()

    def test_set_by_name_and_instance(self):
        by_name = set_kernel_backend("numpy")
        assert get_kernel_backend() is by_name
        instance = NumpyKernelBackend()
        assert set_kernel_backend(instance) is instance
        assert get_kernel_backend() is instance

    def test_set_rejects_non_backend(self):
        with pytest.raises(TypeError):
            set_kernel_backend(42)  # type: ignore[arg-type]

    def test_context_manager_restores_previous(self):
        outer = set_kernel_backend("numpy")
        inner = NumpyKernelBackend()
        with use_kernel_backend(inner) as active:
            assert active is inner
            assert get_kernel_backend() is inner
        assert get_kernel_backend() is outer

    def test_context_manager_restores_on_error(self):
        outer = set_kernel_backend("numpy")
        with pytest.raises(RuntimeError):
            with use_kernel_backend(NumpyKernelBackend()):
                raise RuntimeError("boom")
        assert get_kernel_backend() is outer


# -- numpy reference semantics ------------------------------------------------
class TestNumpyReference:
    def test_diameter_gather_matches_naive(self):
        rng = np.random.default_rng(0)
        mat = rng.normal(size=(9, 6))
        dist = pairwise_distances(mat)
        indices = subset_index_matrix(9, 4)
        got = NumpyKernelBackend().diameter_gather(dist, indices)
        naive = np.array([dist[np.ix_(rows, rows)].max() for rows in indices])
        assert np.array_equal(got, naive)

    def test_weiszfeld_loop_matches_scalar_solver(self):
        # The raw loop has no vertex-snap, so a set whose median sits
        # near a vertex may oscillate below tol without "converging" —
        # identical to the historical behaviour; the caller snaps it.
        # What the backend must guarantee is agreement with the scalar
        # solver run under the same settings.
        pts, w, start = _problem()
        points, iterations, converged = NumpyKernelBackend().weiszfeld_loop(
            pts, w, start.copy(), tol=1e-8, max_iter=500, eps=1e-12
        )
        assert converged.sum() >= pts.shape[0] - 1
        assert (iterations >= 1).all()
        for a in range(pts.shape[0]):
            scalar = geometric_median(pts[a], tol=1e-8, max_iter=500)
            assert np.allclose(points[a], scalar, atol=1e-6)

    def test_float32_storage_returns_float64(self):
        pts, w, start = _problem()
        points, _, converged = NumpyKernelBackend().weiszfeld_loop(
            pts.astype(np.float32), w, start.copy(), tol=1e-6, max_iter=500,
            eps=1e-12,
        )
        assert points.dtype == np.float64
        assert converged.all()
        ref, _, _ = NumpyKernelBackend().weiszfeld_loop(
            pts, w, start.copy(), tol=1e-6, max_iter=500, eps=1e-12
        )
        assert tolerance_tier("float32").check(ref, points)


# -- cross-backend equivalence ------------------------------------------------
@pytest.mark.parametrize("name", available_kernel_backends())
class TestBackendEquivalence:
    def test_diameter_gather_bitwise(self, name):
        backend = make_kernel_backend(name)
        rng = np.random.default_rng(1)
        mat = rng.normal(size=(10, 5))
        dist = pairwise_distances(mat)
        indices = subset_index_matrix(10, 6)
        ref = NumpyKernelBackend().diameter_gather(dist, indices)
        got = backend.diameter_gather(dist, indices)
        # max over the same values commutes: exact for every backend.
        assert np.array_equal(got, ref)

    def test_weiszfeld_loop_within_tier(self, name):
        backend = make_kernel_backend(name)
        pts, w, start = _problem(num_sets=8, s=6, d=5, seed=11)
        ref, _, ref_conv = NumpyKernelBackend().weiszfeld_loop(
            pts, w, start.copy(), tol=1e-9, max_iter=300, eps=1e-12
        )
        got, _, got_conv = backend.weiszfeld_loop(
            pts, w, start.copy(), tol=1e-9, max_iter=300, eps=1e-12
        )
        assert got_conv.all() and ref_conv.all()
        tier = tolerance_tier("float64" if backend.exact else "float32")
        assert tier.check(ref, got)

    def test_batched_geometric_median_through_backend(self, name):
        pts, _, _ = _problem(num_sets=6, s=5, d=4, seed=2)
        reference = batched_geometric_median(pts, tol=1e-9, max_iter=300)
        with use_kernel_backend(name):
            result = batched_geometric_median(pts, tol=1e-9, max_iter=300)
        tier_name = "float64" if make_kernel_backend(name).exact else "float32"
        assert tolerance_tier(tier_name).check(reference, result)


def test_backend_is_abstract():
    with pytest.raises(TypeError):
        KernelBackend()  # type: ignore[abstract]
