"""Tests for repro.linalg.convex (hull membership, safe area)."""

import numpy as np
import pytest

from repro.linalg.convex import (
    hull_distance,
    in_convex_hull,
    safe_area_vertices,
    tverberg_point,
)


class TestInConvexHull:
    def test_vertex_is_inside(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert in_convex_hull(np.array([0.0, 0.0]), verts)

    def test_centroid_is_inside(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert in_convex_hull(verts.mean(axis=0), verts)

    def test_outside_point(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert not in_convex_hull(np.array([1.0, 1.0]), verts)

    def test_degenerate_segment(self):
        verts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert in_convex_hull(np.array([1.0, 0.0]), verts)
        assert not in_convex_hull(np.array([1.0, 0.5]), verts)

    def test_higher_dimension(self, rng):
        verts = rng.normal(size=(8, 5))
        inside = verts.mean(axis=0)
        assert in_convex_hull(inside, verts)
        far = verts.max(axis=0) + 10.0
        assert not in_convex_hull(far, verts)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            in_convex_hull(np.zeros(3), np.zeros((4, 2)))


class TestHullDistance:
    def test_zero_for_inside_point(self):
        verts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert hull_distance(np.array([0.5, 0.5]), verts) == pytest.approx(0.0, abs=1e-6)

    def test_distance_to_segment(self):
        verts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert hull_distance(np.array([1.0, 1.0]), verts) == pytest.approx(1.0, rel=1e-4)

    def test_distance_to_single_point(self):
        verts = np.array([[1.0, 1.0]])
        assert hull_distance(np.array([4.0, 5.0]), verts) == pytest.approx(5.0, rel=1e-6)


class TestSafeArea:
    def test_no_byzantine_gives_full_hull_candidates(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        result = safe_area_vertices(verts, t=0)
        # With t=0 the safe area is the hull of all points, so at least the
        # input points and their mean qualify.
        assert result.shape[0] >= 4

    def test_theorem_41_configuration_collapses_to_origin(self):
        # d=2, f=1: nodes at origin (one correct + byzantine) and two
        # groups at v + eps_j.  The hulls of the (n-1)-subsets intersect
        # only at the origin.
        x = 5.0
        eps = 1e-2
        vectors = np.array(
            [
                [0.0, 0.0],          # correct at origin
                [x + eps, 0.0],      # group 1
                [x, eps],            # group 2
                [0.0, 0.0],          # Byzantine clone of the origin
            ]
        )
        result = safe_area_vertices(vectors, t=1)
        assert result.shape[0] >= 1
        # Every safe-area candidate must be (numerically) the origin.
        assert np.all(np.linalg.norm(result, axis=1) < 1e-6)

    def test_separated_clusters_have_empty_candidate_set(self):
        vectors = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 10.0], [10.1, 10.0]])
        result = safe_area_vertices(vectors, t=2)
        # The hulls of disjoint 2-subsets do not intersect at any candidate.
        assert result.shape[0] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            safe_area_vertices(np.zeros((3, 2)), t=-1)
        with pytest.raises(ValueError):
            safe_area_vertices(np.zeros((3, 2)), t=3)


class TestTverbergPoint:
    def test_returns_point_inside_all_hulls(self, rng):
        vectors = rng.normal(size=(6, 2))
        point = tverberg_point(vectors, t=0)
        assert point is not None
        assert in_convex_hull(point, vectors)

    def test_returns_none_when_no_candidate(self):
        vectors = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 10.0], [10.1, 10.0]])
        assert tverberg_point(vectors, t=2) is None
