"""Tests for repro.linalg.covering_ball."""

import numpy as np
import pytest

from repro.linalg.covering_ball import (
    Ball,
    minimum_covering_ball,
    ritter_ball,
)


class TestBall:
    def test_contains(self):
        ball = Ball(center=np.zeros(2), radius=1.0)
        assert ball.contains(np.array([0.5, 0.5]))
        assert not ball.contains(np.array([2.0, 0.0]))

    def test_contains_all(self, gaussian_cloud):
        ball = minimum_covering_ball(gaussian_cloud)
        assert ball.contains_all(gaussian_cloud)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball(center=np.zeros(2), radius=-1.0)


class TestMinimumCoveringBall:
    def test_single_point(self):
        ball = minimum_covering_ball(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(ball.center, [1.0, 2.0])
        assert ball.radius == 0.0

    def test_two_points(self):
        ball = minimum_covering_ball(np.array([[0.0, 0.0], [2.0, 0.0]]))
        np.testing.assert_allclose(ball.center, [1.0, 0.0])
        assert ball.radius == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        ball = minimum_covering_ball(pts)
        # Circumradius of a unit equilateral triangle is 1/sqrt(3).
        assert ball.radius == pytest.approx(1.0 / np.sqrt(3.0), rel=1e-6)

    def test_square(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        ball = minimum_covering_ball(pts)
        np.testing.assert_allclose(ball.center, [0.5, 0.5], atol=1e-8)
        assert ball.radius == pytest.approx(np.sqrt(0.5), rel=1e-6)

    def test_interior_points_do_not_matter(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 0.1], [1.0, -0.1], [1.0, 0.0]])
        ball = minimum_covering_ball(pts)
        assert ball.radius == pytest.approx(1.0, rel=1e-6)

    def test_covers_random_clouds(self, rng):
        for d in (2, 3, 6):
            pts = rng.normal(size=(30, d))
            ball = minimum_covering_ball(pts)
            assert ball.contains_all(pts)

    def test_radius_at_most_half_diameter_times_constant(self, rng):
        from repro.linalg.distances import diameter

        pts = rng.normal(size=(25, 4))
        ball = minimum_covering_ball(pts)
        diam = diameter(pts)
        # r_cov lies between diam/2 and diam/sqrt(2) in the worst case
        # (Jung's theorem gives an even tighter constant).
        assert diam / 2.0 - 1e-9 <= ball.radius <= diam

    def test_degenerate_collinear(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        ball = minimum_covering_ball(pts)
        np.testing.assert_allclose(ball.center, [1.5, 0.0], atol=1e-8)
        assert ball.radius == pytest.approx(1.5, rel=1e-8)

    def test_identical_points(self):
        pts = np.tile([1.0, 2.0, 3.0], (5, 1))
        ball = minimum_covering_ball(pts)
        assert ball.radius == pytest.approx(0.0, abs=1e-12)

    def test_large_input_falls_back_to_approximation(self, rng):
        pts = rng.normal(size=(80, 3))
        ball = minimum_covering_ball(pts, exact_limit=50)
        assert ball.contains_all(pts)
        exact = minimum_covering_ball(pts)
        # Approximate radius can exceed the optimum, but not by much.
        assert ball.radius <= exact.radius * 1.3 + 1e-9


class TestRitterBall:
    def test_covers(self, rng):
        pts = rng.normal(size=(100, 5))
        ball = ritter_ball(pts)
        assert ball.contains_all(pts)

    def test_not_too_loose(self, rng):
        pts = rng.normal(size=(60, 3))
        approx = ritter_ball(pts)
        exact = minimum_covering_ball(pts)
        assert approx.radius <= 1.6 * exact.radius + 1e-9

    def test_single_cluster(self):
        pts = np.tile([0.0, 0.0], (10, 1))
        ball = ritter_ball(pts)
        assert ball.radius == pytest.approx(0.0, abs=1e-12)
