"""Tests for repro.linalg.distances."""

import numpy as np
import pytest

from repro.linalg.distances import (
    PAIRWISE_DEBUG_ENV,
    diameter,
    distances_to,
    max_coordinate_spread,
    pairwise_distances,
    pairwise_sq_distances,
    resolve_pairwise_matrix,
)


class TestPairwiseDistances:
    def test_matches_bruteforce(self, gaussian_cloud):
        fast = pairwise_distances(gaussian_cloud)
        m = gaussian_cloud.shape[0]
        slow = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                slow[i, j] = np.linalg.norm(gaussian_cloud[i] - gaussian_cloud[j])
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    def test_symmetry(self, gaussian_cloud):
        dist = pairwise_distances(gaussian_cloud)
        np.testing.assert_allclose(dist, dist.T)

    def test_zero_diagonal(self, gaussian_cloud):
        dist = pairwise_distances(gaussian_cloud)
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_nonnegative(self, gaussian_cloud):
        assert np.all(pairwise_sq_distances(gaussian_cloud) >= 0.0)

    def test_identical_points(self):
        points = np.ones((4, 3))
        np.testing.assert_allclose(pairwise_distances(points), 0.0)

    def test_single_point(self):
        dist = pairwise_distances(np.array([[1.0, 2.0]]))
        assert dist.shape == (1, 1)
        assert dist[0, 0] == 0.0


class TestResolvePairwiseMatrix:
    def _cloud(self, m=5, d=3, seed=0):
        return np.random.default_rng(seed).normal(size=(m, d))

    def test_computes_when_absent(self):
        mat = self._cloud()
        assert np.array_equal(
            resolve_pairwise_matrix(mat, None), pairwise_distances(mat)
        )
        assert np.array_equal(
            resolve_pairwise_matrix(mat, None, squared=True),
            pairwise_sq_distances(mat),
        )

    def test_passes_valid_matrix_through(self):
        mat = self._cloud()
        dist = pairwise_distances(mat)
        assert resolve_pairwise_matrix(mat, dist) is dist

    def test_rejects_wrong_shape(self):
        mat = self._cloud(m=5)
        with pytest.raises(ValueError, match=r"shape \(5, 5\)"):
            resolve_pairwise_matrix(mat, np.zeros((4, 4)))

    def test_rejects_non_floating_dtype_naming_kind(self):
        mat = self._cloud(m=3)
        bad = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(ValueError, match="floating-point Euclidean"):
            resolve_pairwise_matrix(mat, bad)
        with pytest.raises(ValueError, match="floating-point squared Euclidean"):
            resolve_pairwise_matrix(mat, bad, squared=True)

    def test_finite_check_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PAIRWISE_DEBUG_ENV, raising=False)
        mat = self._cloud(m=3)
        bad = np.full((3, 3), np.nan)
        # Production default: trusted caches, no O(m^2) sweep.
        assert resolve_pairwise_matrix(mat, bad) is bad

    def test_finite_check_env_toggle(self, monkeypatch):
        monkeypatch.setenv(PAIRWISE_DEBUG_ENV, "1")
        mat = self._cloud(m=3)
        bad = np.full((3, 3), np.inf)
        with pytest.raises(ValueError, match="non-finite.*Euclidean"):
            resolve_pairwise_matrix(mat, bad)
        # "0" and empty disable the sweep again.
        monkeypatch.setenv(PAIRWISE_DEBUG_ENV, "0")
        assert resolve_pairwise_matrix(mat, bad) is bad

    def test_finite_check_explicit_flag_wins(self, monkeypatch):
        monkeypatch.delenv(PAIRWISE_DEBUG_ENV, raising=False)
        mat = self._cloud(m=3)
        bad = np.full((3, 3), np.nan)
        with pytest.raises(ValueError, match="non-finite.*squared Euclidean"):
            resolve_pairwise_matrix(mat, bad, squared=True, check_finite=True)
        good = pairwise_distances(mat)
        assert resolve_pairwise_matrix(mat, good, check_finite=True) is good


class TestDiameter:
    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert diameter(pts) == pytest.approx(5.0)

    def test_single_point_zero(self):
        assert diameter(np.array([[1.0, 1.0]])) == 0.0

    def test_invariant_under_translation(self, gaussian_cloud):
        shifted = gaussian_cloud + 100.0
        assert diameter(shifted) == pytest.approx(diameter(gaussian_cloud))

    def test_scales_linearly(self, gaussian_cloud):
        assert diameter(3.0 * gaussian_cloud) == pytest.approx(3.0 * diameter(gaussian_cloud))


class TestMaxCoordinateSpread:
    def test_axis_aligned(self):
        pts = np.array([[0.0, 0.0], [1.0, 5.0], [0.5, 2.0]])
        assert max_coordinate_spread(pts) == pytest.approx(5.0)

    def test_at_most_diameter(self, gaussian_cloud):
        assert max_coordinate_spread(gaussian_cloud) <= diameter(gaussian_cloud) + 1e-12

    def test_at_least_diameter_over_sqrt_d(self, gaussian_cloud):
        d = gaussian_cloud.shape[1]
        assert max_coordinate_spread(gaussian_cloud) >= diameter(gaussian_cloud) / np.sqrt(d) - 1e-12


class TestDistancesTo:
    def test_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = distances_to(pts, np.array([0.0, 0.0]))
        np.testing.assert_allclose(out, [0.0, 5.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            distances_to(np.zeros((3, 2)), np.zeros(3))
