"""Tests for repro.linalg.geometric_median (Weiszfeld, medoid)."""

import numpy as np
import pytest

from repro.linalg.geometric_median import (
    WeiszfeldResult,
    coordinatewise_median,
    geometric_median,
    geometric_median_cost,
    medoid,
    medoid_index,
)


class TestGeometricMedianBasics:
    def test_single_point(self):
        point = np.array([[2.0, -1.0, 3.0]])
        np.testing.assert_allclose(geometric_median(point), point[0])

    def test_identical_points(self):
        pts = np.tile(np.array([1.0, 2.0]), (6, 1))
        np.testing.assert_allclose(geometric_median(pts), [1.0, 2.0], atol=1e-9)

    def test_two_points_on_segment(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        med = geometric_median(pts)
        # Any point on the segment is optimal; the returned point must be on it.
        assert 0.0 - 1e-9 <= med[0] <= 2.0 + 1e-9
        assert abs(med[1]) < 1e-9

    def test_collinear_odd_points_is_middle(self):
        pts = np.array([[0.0], [1.0], [10.0]])
        np.testing.assert_allclose(geometric_median(pts), [1.0], atol=1e-6)

    def test_symmetric_square_center(self):
        pts = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(geometric_median(pts), [0.0, 0.0], atol=1e-8)

    def test_majority_at_single_point(self):
        # With a strict majority of points at one location, the geometric
        # median is that location.
        pts = np.vstack([np.tile([5.0, 5.0], (6, 1)), np.zeros((4, 2))])
        np.testing.assert_allclose(geometric_median(pts), [5.0, 5.0], atol=1e-6)

    def test_one_dimension_matches_median(self, rng):
        values = rng.normal(size=(11, 1))
        np.testing.assert_allclose(
            geometric_median(values, tol=1e-12, max_iter=2000),
            np.median(values, axis=0),
            atol=1e-4,
        )


class TestGeometricMedianOptimality:
    def test_cost_below_perturbations(self, gaussian_cloud):
        med = geometric_median(gaussian_cloud, tol=1e-12, max_iter=1000)
        base_cost = geometric_median_cost(gaussian_cloud, med)
        rng = np.random.default_rng(0)
        for _ in range(20):
            perturbed = med + rng.normal(0.0, 0.1, size=med.shape)
            assert base_cost <= geometric_median_cost(gaussian_cloud, perturbed) + 1e-9

    def test_cost_below_mean_and_inputs(self, gaussian_cloud):
        med = geometric_median(gaussian_cloud, tol=1e-12, max_iter=1000)
        cost = geometric_median_cost(gaussian_cloud, med)
        assert cost <= geometric_median_cost(gaussian_cloud, gaussian_cloud.mean(axis=0)) + 1e-9
        for row in gaussian_cloud:
            assert cost <= geometric_median_cost(gaussian_cloud, row) + 1e-9

    def test_robust_to_outlier(self, cloud_with_outlier):
        med = geometric_median(cloud_with_outlier)
        mean = cloud_with_outlier.mean(axis=0)
        honest_center = cloud_with_outlier[:9].mean(axis=0)
        assert np.linalg.norm(med - honest_center) < np.linalg.norm(mean - honest_center)

    def test_translation_equivariance(self, gaussian_cloud):
        shift = np.arange(gaussian_cloud.shape[1], dtype=float)
        a = geometric_median(gaussian_cloud, tol=1e-12, max_iter=1000)
        b = geometric_median(gaussian_cloud + shift, tol=1e-12, max_iter=1000)
        np.testing.assert_allclose(b, a + shift, atol=1e-6)

    def test_inside_bounding_box(self, gaussian_cloud):
        med = geometric_median(gaussian_cloud)
        assert np.all(med >= gaussian_cloud.min(axis=0) - 1e-9)
        assert np.all(med <= gaussian_cloud.max(axis=0) + 1e-9)


class TestGeometricMedianOptions:
    def test_weights(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        med = geometric_median(pts, weights=np.array([100.0, 1.0]), tol=1e-12, max_iter=2000)
        assert np.linalg.norm(med - pts[0]) < 1.0

    def test_weights_length_mismatch(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, weights=np.ones(3))

    def test_negative_weights_rejected(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, weights=-np.ones(gaussian_cloud.shape[0]))

    def test_all_zero_weights_rejected(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, weights=np.zeros(gaussian_cloud.shape[0]))

    def test_return_info(self, gaussian_cloud):
        result = geometric_median(gaussian_cloud, return_info=True)
        assert isinstance(result, WeiszfeldResult)
        assert result.iterations >= 1
        assert result.cost > 0.0

    def test_convergence_flag(self, gaussian_cloud):
        result = geometric_median(gaussian_cloud, tol=1e-10, max_iter=5000, return_info=True)
        assert result.converged

    def test_max_iter_limits_iterations(self, gaussian_cloud):
        result = geometric_median(gaussian_cloud, tol=1e-16, max_iter=3, return_info=True)
        assert result.iterations <= 3

    def test_invalid_tol(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, tol=0.0)

    def test_invalid_max_iter(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, max_iter=0)

    def test_initial_point(self, gaussian_cloud):
        med = geometric_median(gaussian_cloud, initial=gaussian_cloud[0], tol=1e-12, max_iter=2000)
        ref = geometric_median(gaussian_cloud, tol=1e-12, max_iter=2000)
        np.testing.assert_allclose(med, ref, atol=1e-5)

    def test_initial_dimension_mismatch(self, gaussian_cloud):
        with pytest.raises(ValueError):
            geometric_median(gaussian_cloud, initial=np.zeros(2))

    def test_iterate_collision_with_input_point(self):
        # Start exactly on an input point: the epsilon smoothing must keep
        # the iteration finite and converge to the median of the cross.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        med = geometric_median(pts, initial=np.array([0.0, 0.0]))
        np.testing.assert_allclose(med, [0.0, 0.0], atol=1e-6)
        assert np.all(np.isfinite(med))


class TestMedoid:
    def test_medoid_is_input_point(self, gaussian_cloud):
        m = medoid(gaussian_cloud)
        assert any(np.allclose(m, row) for row in gaussian_cloud)

    def test_medoid_index_minimises_cost(self, gaussian_cloud):
        idx = medoid_index(gaussian_cloud)
        costs = [geometric_median_cost(gaussian_cloud, row) for row in gaussian_cloud]
        assert costs[idx] == pytest.approx(min(costs))

    def test_medoid_ignores_far_outlier(self, cloud_with_outlier):
        assert medoid_index(cloud_with_outlier) != 9


class TestCoordinatewiseMedian:
    def test_matches_numpy(self, gaussian_cloud):
        np.testing.assert_allclose(
            coordinatewise_median(gaussian_cloud), np.median(gaussian_cloud, axis=0)
        )

    def test_cost_function_weighted(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        cost = geometric_median_cost(pts, np.zeros(2), weights=np.array([1.0, 2.0]))
        assert cost == pytest.approx(10.0)
