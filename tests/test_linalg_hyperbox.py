"""Tests for repro.linalg.hyperbox."""

import numpy as np
import pytest

from repro.linalg.hyperbox import (
    Hyperbox,
    bounding_hyperbox,
    intersect_all,
    trimmed_hyperbox,
)


@pytest.fixture
def unit_box():
    return Hyperbox(lower=np.zeros(3), upper=np.ones(3))


class TestHyperboxBasics:
    def test_dimension(self, unit_box):
        assert unit_box.dimension == 3

    def test_midpoint(self, unit_box):
        np.testing.assert_allclose(unit_box.midpoint(), [0.5, 0.5, 0.5])

    def test_max_edge_length(self):
        box = Hyperbox(lower=[0.0, 0.0], upper=[2.0, 5.0])
        assert box.max_edge_length() == pytest.approx(5.0)

    def test_diagonal_length(self, unit_box):
        assert unit_box.diagonal_length() == pytest.approx(np.sqrt(3.0))

    def test_volume(self):
        box = Hyperbox(lower=[0.0, 0.0], upper=[2.0, 3.0])
        assert box.volume() == pytest.approx(6.0)

    def test_degenerate_box(self):
        box = Hyperbox(lower=[1.0, 1.0], upper=[1.0, 1.0])
        assert not box.is_empty
        assert box.volume() == 0.0
        np.testing.assert_allclose(box.midpoint(), [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Hyperbox(lower=np.zeros(2), upper=np.zeros(3))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            Hyperbox(lower=[0.0, np.nan], upper=[1.0, 1.0])

    def test_empty_box_properties(self):
        box = Hyperbox(lower=[1.0], upper=[0.0])
        assert box.is_empty
        assert box.max_edge_length() == 0.0
        assert box.volume() == 0.0
        with pytest.raises(ValueError):
            box.midpoint()


class TestContainment:
    def test_contains_interior_point(self, unit_box):
        assert unit_box.contains(np.array([0.5, 0.5, 0.5]))

    def test_contains_boundary(self, unit_box):
        assert unit_box.contains(np.zeros(3))

    def test_rejects_outside(self, unit_box):
        assert not unit_box.contains(np.array([1.5, 0.5, 0.5]))

    def test_dimension_mismatch(self, unit_box):
        with pytest.raises(ValueError):
            unit_box.contains(np.zeros(2))

    def test_contains_box(self, unit_box):
        inner = Hyperbox(lower=[0.2, 0.2, 0.2], upper=[0.8, 0.8, 0.8])
        assert unit_box.contains_box(inner)
        assert not inner.contains_box(unit_box)

    def test_empty_box_contained_everywhere(self, unit_box):
        empty = Hyperbox(lower=[1.0, 1.0, 1.0], upper=[0.0, 0.0, 0.0])
        assert unit_box.contains_box(empty)

    def test_midpoint_inside(self, unit_box):
        assert unit_box.contains(unit_box.midpoint())


class TestSetOperations:
    def test_intersection_overlapping(self):
        a = Hyperbox(lower=[0.0, 0.0], upper=[2.0, 2.0])
        b = Hyperbox(lower=[1.0, 1.0], upper=[3.0, 3.0])
        inter = a.intersect(b)
        np.testing.assert_allclose(inter.lower, [1.0, 1.0])
        np.testing.assert_allclose(inter.upper, [2.0, 2.0])

    def test_intersection_disjoint_is_empty(self):
        a = Hyperbox(lower=[0.0], upper=[1.0])
        b = Hyperbox(lower=[2.0], upper=[3.0])
        assert a.intersect(b).is_empty

    def test_intersection_commutes(self, unit_box):
        other = Hyperbox(lower=[0.5, -1.0, 0.2], upper=[2.0, 0.5, 0.7])
        x = unit_box.intersect(other)
        y = other.intersect(unit_box)
        np.testing.assert_allclose(x.lower, y.lower)
        np.testing.assert_allclose(x.upper, y.upper)

    def test_union_bounding(self):
        a = Hyperbox(lower=[0.0], upper=[1.0])
        b = Hyperbox(lower=[2.0], upper=[3.0])
        u = a.union_bounding(b)
        np.testing.assert_allclose([u.lower[0], u.upper[0]], [0.0, 3.0])

    def test_expand(self, unit_box):
        bigger = unit_box.expand(1.0)
        assert bigger.contains_box(unit_box)
        with pytest.raises(ValueError):
            unit_box.expand(-0.1)

    def test_clip(self, unit_box):
        clipped = unit_box.clip(np.array([2.0, -1.0, 0.5]))
        np.testing.assert_allclose(clipped, [1.0, 0.0, 0.5])

    def test_sample_inside(self, unit_box, rng):
        samples = unit_box.sample(rng, 50)
        assert samples.shape == (50, 3)
        assert all(unit_box.contains(s) for s in samples)

    def test_corners_count(self, unit_box):
        corners = unit_box.corners()
        assert corners.shape == (8, 3)
        assert all(unit_box.contains(c) for c in corners)

    def test_corners_guard(self):
        box = Hyperbox(lower=np.zeros(20), upper=np.ones(20))
        with pytest.raises(ValueError):
            box.corners()

    def test_intersect_all(self):
        boxes = [
            Hyperbox(lower=[0.0], upper=[3.0]),
            Hyperbox(lower=[1.0], upper=[4.0]),
            Hyperbox(lower=[2.0], upper=[5.0]),
        ]
        inter = intersect_all(boxes)
        np.testing.assert_allclose([inter.lower[0], inter.upper[0]], [2.0, 3.0])

    def test_intersect_all_empty_iterable(self):
        assert intersect_all([]) is None


class TestBoundingHyperbox:
    def test_contains_all_points(self, gaussian_cloud):
        box = bounding_hyperbox(gaussian_cloud)
        assert all(box.contains(p) for p in gaussian_cloud)

    def test_is_smallest(self, gaussian_cloud):
        box = bounding_hyperbox(gaussian_cloud)
        np.testing.assert_allclose(box.lower, gaussian_cloud.min(axis=0))
        np.testing.assert_allclose(box.upper, gaussian_cloud.max(axis=0))


class TestTrimmedHyperbox:
    def test_trim_zero_is_bounding_box(self, gaussian_cloud):
        box = trimmed_hyperbox(gaussian_cloud, 0)
        ref = bounding_hyperbox(gaussian_cloud)
        np.testing.assert_allclose(box.lower, ref.lower)
        np.testing.assert_allclose(box.upper, ref.upper)

    def test_trim_removes_extremes(self):
        pts = np.array([[0.0], [1.0], [2.0], [3.0], [100.0]])
        box = trimmed_hyperbox(pts, 1)
        np.testing.assert_allclose([box.lower[0], box.upper[0]], [1.0, 3.0])

    def test_trimmed_contained_in_bounding(self, gaussian_cloud):
        trimmed = trimmed_hyperbox(gaussian_cloud, 2)
        assert bounding_hyperbox(gaussian_cloud).contains_box(trimmed)

    def test_trimmed_excludes_byzantine_outlier(self, cloud_with_outlier):
        # One Byzantine value per coordinate: trimming 1 per side must
        # bring the upper corner back to honest range.
        box = trimmed_hyperbox(cloud_with_outlier, 1)
        honest_box = bounding_hyperbox(cloud_with_outlier[:9])
        assert honest_box.contains_box(box)

    def test_over_trimming_rejected(self):
        with pytest.raises(ValueError):
            trimmed_hyperbox(np.zeros((4, 2)), 2)

    def test_negative_trim_rejected(self, gaussian_cloud):
        with pytest.raises(ValueError):
            trimmed_hyperbox(gaussian_cloud, -1)
