"""Precision-tier and sparsity-fast-path equivalence contracts.

The kernel layer promises a tiered equivalence contract
(:mod:`repro.linalg.precision`):

- ``float64`` (default) — **bitwise** identical to the historical dense
  kernels, with or without sparsity routing;
- ``float32`` — float32 storage with float64 accumulation, within the
  documented ``rtol=atol=1e-3`` tier of the float64 reference.

And the sparsity layer (:mod:`repro.linalg.sparsity`) promises that on
structured update stacks — byte-identical duplicated rows (coordinated
sign-flip cliques), exact ``+0.0`` columns (inactive layers, partition
attacks) — the reduced-computation routes are *exactly* equivalent to
the dense paths wherever they engage for float64.

Both contracts are checked here across every registry rule and directly
on the subset kernels, property-style over many seeded random structured
instances (deterministic generation, reproducible by seed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.context import AggregationContext
from repro.aggregation.registry import available_rules, make_rule
from repro.linalg.distances import pairwise_distances, pairwise_sq_distances
from repro.linalg.precision import (
    DEFAULT_DTYPE,
    SUPPORTED_DTYPES,
    TOLERANCE_TIERS,
    accumulation_dtype,
    dtype_name,
    resolve_dtype,
    tolerance_tier,
)
from repro.linalg.sparsity import (
    SparsityProfile,
    dedup_subsets,
    detect_structure,
    resolve_sparsity,
)
from repro.linalg.subset_kernels import (
    subset_diameters,
    subset_geometric_medians,
    subset_index_matrix,
    subset_means,
)

N, T = 10, 2
RULES = available_rules()


def structured_stack(seed: int, *, n: int = N, t: int = T, d: int = 24,
                     zero_fraction: float = 0.5) -> np.ndarray:
    """Honest cluster + byte-identical sign-flip clique + zero columns."""
    rng = np.random.default_rng(seed)
    active = max(1, int(round(d * (1.0 - zero_fraction))))
    mat = np.zeros((n, d), dtype=np.float64)
    mat[: n - t, :active] = rng.normal(0.0, 1.0, size=(n - t, active))
    mat[n - t:, :active] = np.tile(-4.0 * mat[:1, :active], (t, 1))
    return mat


# -- precision module ---------------------------------------------------------
class TestPrecisionModule:
    def test_supported_and_default(self):
        assert DEFAULT_DTYPE == "float64"
        assert set(SUPPORTED_DTYPES) == {"float64", "float32"}
        assert set(TOLERANCE_TIERS) == set(SUPPORTED_DTYPES)

    def test_resolve_dtype(self):
        assert resolve_dtype(None) == np.dtype(np.float64)
        assert resolve_dtype("float32") == np.dtype(np.float32)
        assert resolve_dtype(np.float32) == np.dtype(np.float32)
        with pytest.raises(ValueError, match="unsupported kernel dtype"):
            resolve_dtype("float16")
        with pytest.raises(ValueError, match="unsupported kernel dtype"):
            resolve_dtype("int64")

    def test_dtype_name(self):
        assert dtype_name(None) == "float64"
        assert dtype_name("float32") == "float32"

    def test_accumulation_always_float64(self):
        for name in SUPPORTED_DTYPES:
            assert accumulation_dtype(name) == np.dtype(np.float64)

    def test_float64_tier_is_bitwise(self):
        tier = tolerance_tier("float64")
        assert tier.bitwise
        a = np.array([1.0, -0.0])
        assert tier.check(a, a.copy())
        # Even a 1-ulp difference fails the bitwise tier.
        assert not tier.check(a, np.nextafter(a, np.inf))
        # -0.0 vs +0.0 compares equal under array_equal (==) — the tier
        # is about values produced by identical operations.
        assert tier.check(np.array([0.0]), np.array([-0.0]))

    def test_float32_tier_tolerances(self):
        tier = tolerance_tier("float32")
        assert not tier.bitwise
        assert tier.rtol == 1e-3 and tier.atol == 1e-3
        ref = np.array([1.0, 100.0])
        assert tier.check(ref, ref * (1 + 5e-4))
        assert not tier.check(ref, ref * 1.1)


# -- sparsity module ----------------------------------------------------------
class TestSparsityModule:
    def test_resolve_sparsity(self):
        assert resolve_sparsity(None) == "auto"
        assert resolve_sparsity("off") == "off"
        with pytest.raises(ValueError, match="unknown sparsity mode"):
            resolve_sparsity("dense")

    @pytest.mark.parametrize("seed", range(5))
    def test_detect_structure_properties(self, seed):
        mat = structured_stack(seed)
        prof = detect_structure(mat)
        assert isinstance(prof, SparsityProfile)
        # t byzantine duplicates of each other (not of row 0: scaled).
        assert prof.num_unique_rows == N - T + 1
        assert prof.has_duplicate_rows
        # row_group_ids maps each row to the first byte-identical row.
        for i, g in enumerate(prof.row_group_ids):
            assert mat[i].tobytes() == mat[g].tobytes()
            assert g <= i
        assert prof.num_zero_columns == mat.shape[1] - 12
        assert prof.zero_column_fraction == pytest.approx(0.5)
        assert prof.elidable()

    def test_minus_zero_is_not_elidable(self):
        mat = np.zeros((4, 8))
        mat[:, :2] = 1.0
        mat[1, 5] = -0.0  # sign bit set: column 5 must not be elided
        prof = detect_structure(mat)
        assert not prof.nonzero_columns[6]  # ordinary zero column
        assert prof.nonzero_columns[5]  # -0.0 keeps the column
        assert prof.num_zero_columns == 5

    def test_dense_matrix_has_no_structure(self):
        rng = np.random.default_rng(0)
        prof = detect_structure(rng.normal(size=(6, 9)))
        assert not prof.has_duplicate_rows
        assert not prof.has_zero_columns
        assert not prof.elidable()
        indices = subset_index_matrix(6, 4)
        assert dedup_subsets(indices, prof) is None

    @pytest.mark.parametrize("seed", range(5))
    def test_dedup_subsets_cover_and_scatter(self, seed):
        mat = structured_stack(seed)
        prof = detect_structure(mat)
        indices = subset_index_matrix(N, N - T)
        plan = dedup_subsets(indices, prof)
        assert plan is not None
        reps, inverse = plan
        assert reps.shape[1] == indices.shape[1]
        assert inverse.shape == (indices.shape[0],)
        assert reps.shape[0] < indices.shape[0]
        # Scattering representative rows reproduces each subset's
        # pattern: gathered matrices are byte-identical.
        for i in range(indices.shape[0]):
            a = mat[indices[i]]
            b = mat[reps[inverse[i]]]
            assert a.tobytes() == b.tobytes()


# -- kernel-level equivalence -------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
class TestKernelSparsityEquivalence:
    """sparsity='auto' must equal sparsity='off' exactly on float64."""

    def test_pairwise_float32_structured(self, seed):
        mat32 = structured_stack(seed).astype(np.float32)
        prof = detect_structure(mat32)
        dense = pairwise_sq_distances(mat32, sparsity="off")
        routed = pairwise_sq_distances(mat32, profile=prof, sparsity="auto")
        assert routed.dtype == np.float64
        assert tolerance_tier("float32").check(dense, routed)
        # Duplicate-row pairs must come out exactly zero.
        byz = range(N - T, N)
        for i in byz:
            for j in byz:
                assert routed[i, j] == 0.0

    def test_subset_kernels_float64_bitwise(self, seed):
        mat = structured_stack(seed)
        prof = detect_structure(mat)
        indices = subset_index_matrix(N, N - T)
        dist = pairwise_distances(mat)
        for kernel, args in (
            (subset_diameters, (dist, indices)),
            (subset_means, (mat, indices)),
        ):
            dense = kernel(*args, sparsity="off")
            routed = kernel(*args, sparsity="auto", profile=prof)
            assert np.array_equal(dense, routed), kernel.__name__

        dense_med = subset_geometric_medians(mat, indices, dist=dist, sparsity="off")
        routed_med = subset_geometric_medians(
            mat, indices, dist=dist, sparsity="auto", profile=prof
        )
        assert np.array_equal(dense_med, routed_med)

    def test_subset_kernels_float32_within_tier(self, seed):
        mat = structured_stack(seed)
        mat32 = mat.astype(np.float32)
        prof32 = detect_structure(mat32)
        indices = subset_index_matrix(N, N - T)
        dist = pairwise_distances(mat)
        dist32 = pairwise_distances(mat32, profile=prof32, sparsity="auto")
        tier = tolerance_tier("float32")

        ref_means = subset_means(mat, indices)
        fast_means = subset_means(mat32, indices, sparsity="auto", profile=prof32)
        assert fast_means.dtype == np.float64
        assert tier.check(ref_means, fast_means)

        ref_diam = subset_diameters(dist, indices)
        fast_diam = subset_diameters(dist32, indices, sparsity="auto", profile=prof32)
        assert tier.check(ref_diam, fast_diam)

        ref_med = subset_geometric_medians(mat, indices, dist=dist)
        fast_med = subset_geometric_medians(
            mat32, indices, dist=dist32, sparsity="auto", profile=prof32
        )
        assert fast_med.dtype == np.float64
        assert tier.check(ref_med, fast_med)


# -- rule-level equivalence across the whole registry -------------------------
@pytest.mark.parametrize("rule_name", RULES)
class TestRulePrecisionTiers:
    def _stacks(self):
        return [structured_stack(seed) for seed in range(3)] + [
            np.random.default_rng(9).normal(size=(N, 16))  # dense, unstructured
        ]

    def test_float64_sparsity_bitwise(self, rule_name):
        for stack in self._stacks():
            ref = make_rule(rule_name, n=N, t=T).aggregate(
                context=AggregationContext(stack, sparsity="off")
            )
            routed = make_rule(rule_name, n=N, t=T).aggregate(
                context=AggregationContext(stack, sparsity="auto")
            )
            assert np.array_equal(ref, routed), rule_name

    def test_float32_within_tier(self, rule_name):
        tier = tolerance_tier("float32")
        for stack in self._stacks():
            ref = make_rule(rule_name, n=N, t=T).aggregate(
                context=AggregationContext(stack)
            )
            fast = make_rule(rule_name, n=N, t=T).aggregate(
                context=AggregationContext(stack, dtype="float32")
            )
            assert fast.dtype == np.float64, rule_name
            assert tier.check(ref, fast), rule_name


# -- context and config plumbing ----------------------------------------------
class TestDtypePlumbing:
    def test_context_stores_requested_dtype(self):
        stack = structured_stack(0)
        ctx = AggregationContext(stack, dtype="float32")
        assert ctx.matrix.dtype == np.float32
        assert ctx.dtype_name == "float32"
        assert ctx.sq_distances.dtype == np.float64
        assert ctx.subset_means(N - T).dtype == np.float64

    def test_context_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="unsupported kernel dtype"):
            AggregationContext(structured_stack(0), dtype="float16")

    def test_context_profile_off(self):
        ctx = AggregationContext(structured_stack(0), sparsity="off")
        assert ctx.profile is None

    def test_experiment_config_dtype_validated(self):
        from repro.learning.experiment import ExperimentConfig

        config = ExperimentConfig(dtype="float32")
        assert config.dtype == "float32"
        with pytest.raises(ValueError, match="unknown dtype"):
            ExperimentConfig(dtype="bfloat16")

    def test_dtype_is_a_sweep_axis(self):
        from repro.learning.experiment import ExperimentConfig
        from repro.sweep.grid import ScenarioGrid

        grid = ScenarioGrid(
            base=ExperimentConfig(num_clients=4, num_byzantine=1,
                                  aggregation="mean", num_samples=120,
                                  rounds=2, batch_size=8),
            axes={"dtype": ["float64", "float32"]},
        )
        cells = list(grid.cells())
        assert [c.config.dtype for c in cells] == ["float64", "float32"]
        assert {c.cell_id for c in cells} == {"dtype=float64", "dtype=float32"}

    @pytest.mark.parametrize("algo_name", ("box-geom", "md-mean", "mean",
                                           "safe-area"))
    def test_make_algorithm_accepts_dtype(self, algo_name):
        from repro.agreement.registry import make_algorithm

        algorithm = make_algorithm(algo_name, 7, 1, dtype="float32")
        assert algorithm.dtype_name == "float32"

    def test_agreement_update_uses_tier(self):
        from repro.agreement.registry import make_algorithm

        rng = np.random.default_rng(5)
        received = rng.normal(size=(7, 6))
        ref = make_algorithm("box-geom", 7, 1).update(received)
        fast = make_algorithm("box-geom", 7, 1, dtype="float32").update(received)
        assert fast.dtype == np.float64
        assert tolerance_tier("float32").check(ref, fast)


# -- hypothesis properties ----------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def attack_stacks(draw):
    """Random structured stacks shaped like real attack rounds.

    Byzantine rows are byte-identical duplicates (coordinated clique) of
    a scaled honest row; a random suffix of columns is exactly +0.0
    (inactive coordinates shared by every client).
    """
    n = draw(st.integers(min_value=6, max_value=10))
    t = draw(st.integers(min_value=1, max_value=(n - 1) // 3))
    d = draw(st.integers(min_value=4, max_value=24))
    active = draw(st.integers(min_value=1, max_value=d))
    scale = draw(st.floats(min_value=-8.0, max_value=8.0,
                           allow_nan=False, allow_infinity=False))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = np.zeros((n, d), dtype=np.float64)
    mat[: n - t, :active] = rng.normal(0.0, 1.0, size=(n - t, active))
    mat[n - t:, :active] = np.tile(scale * mat[:1, :active], (t, 1))
    return mat, n, t


@given(attack_stacks())
@settings(max_examples=40, deadline=None)
def test_property_sparsity_routing_is_exact_on_float64(case):
    """sparsity='auto' ≡ sparsity='off' bitwise for every f64 kernel."""
    mat, n, t = case
    prof = detect_structure(mat)
    indices = subset_index_matrix(n, n - t)
    dist = pairwise_distances(mat)
    assert np.array_equal(
        subset_means(mat, indices, sparsity="off"),
        subset_means(mat, indices, sparsity="auto", profile=prof),
    )
    assert np.array_equal(
        subset_diameters(dist, indices, sparsity="off"),
        subset_diameters(dist, indices, sparsity="auto", profile=prof),
    )
    assert np.array_equal(
        subset_geometric_medians(mat, indices, dist=dist, sparsity="off"),
        subset_geometric_medians(
            mat, indices, dist=dist, sparsity="auto", profile=prof
        ),
    )


@given(attack_stacks())
@settings(max_examples=25, deadline=None)
def test_property_float32_fast_path_stays_in_tier(case):
    """f32 + sparsity routing stays within the float32 tier of dense f64."""
    mat, n, t = case
    mat32 = mat.astype(np.float32)
    prof32 = detect_structure(mat32)
    indices = subset_index_matrix(n, n - t)
    dist = pairwise_distances(mat)
    dist32 = pairwise_distances(mat32, profile=prof32, sparsity="auto")
    tier = tolerance_tier("float32")
    assert tier.check(
        subset_means(mat, indices),
        subset_means(mat32, indices, sparsity="auto", profile=prof32),
    )
    assert tier.check(
        subset_diameters(dist, indices),
        subset_diameters(dist32, indices, sparsity="auto", profile=prof32),
    )
