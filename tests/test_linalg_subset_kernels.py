"""Batched-vs-looped equivalence suite for the subset kernels.

The contract of :mod:`repro.linalg.subset_kernels`:

- subset **means** and **diameters** are *bitwise* identical to the
  per-tuple scalar loops,
- subset **geometric medians** match the scalar Weiszfeld solves within
  a tolerance of order ``tol``,
- ``chunk_size`` never changes values, only peak memory,
- the :class:`~repro.aggregation.context.AggregationContext` subset
  caches serve the exact same arrays to every consumer in a round.
"""

from itertools import combinations
from math import comb

import numpy as np
import pytest

from repro.aggregation.context import (
    AggregationContext,
    cache_stats,
    reset_cache_stats,
    subset_cache_hit_rate,
)
from repro.linalg.distances import pairwise_distances
from repro.linalg.geometric_median import (
    batched_geometric_median,
    geometric_median,
)
from repro.linalg.subset_kernels import (
    resolve_chunk_size,
    subset_diameters,
    subset_geometric_medians,
    subset_index_matrix,
    subset_means,
    subsets_as_matrix,
    validate_subset_indices,
)
from repro.linalg.subsets import subset_family


def looped_means(mat, size):
    return np.stack(
        [mat[list(s)].mean(axis=0) for s in combinations(range(mat.shape[0]), size)]
    )


def looped_diameters(dist, size):
    m = dist.shape[0]
    return np.array(
        [dist[np.ix_(list(s), list(s))].max() for s in combinations(range(m), size)]
    )


def looped_medians(mat, size, *, tol=1e-8, max_iter=200):
    return np.stack(
        [
            geometric_median(mat[list(s)], tol=tol, max_iter=max_iter)
            for s in combinations(range(mat.shape[0]), size)
        ]
    )


#: Degenerate point stacks the batched solver must handle like the
#: scalar one: duplicates, medians colliding with input points, and
#: widely separated clusters.
DEGENERATE_STACKS = {
    "duplicates": np.array(
        [[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.5, 1.0]]
    ),
    "median-on-input": np.array(
        # A star: the centre point IS the geometric median of the set,
        # which makes the Weiszfeld iterate collide with an input point.
        [[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]]
    ),
    "all-identical": np.tile([2.0, -3.0], (5, 1)),
    "two-clusters": np.vstack(
        [np.zeros((3, 2)), np.full((2, 2), 100.0)]
    ),
}


class TestSubsetIndexMatrix:
    def test_matches_enumeration(self):
        idx = subset_index_matrix(7, 4)
        assert idx.shape == (comb(7, 4), 4)
        assert [tuple(row) for row in idx] == list(combinations(range(7), 4))

    def test_edge_sizes(self):
        assert subset_index_matrix(5, 5).shape == (1, 5)
        assert subset_index_matrix(5, 0).shape == (1, 0)
        assert subset_index_matrix(3, 5).shape == (0, 5)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            subset_index_matrix(3, -1)

    def test_subsets_as_matrix_round_trip(self):
        tuples = [(0, 2), (1, 3)]
        mat = subsets_as_matrix(tuples, 2)
        assert mat.dtype == np.int64
        assert [tuple(r) for r in mat] == tuples

    def test_subsets_as_matrix_validates(self):
        with pytest.raises(ValueError):
            subsets_as_matrix([], None)
        with pytest.raises(ValueError):
            subsets_as_matrix([(0, 1)], 3)

    def test_validate_subset_indices_bounds(self):
        with pytest.raises(ValueError):
            validate_subset_indices(np.array([[0, 5]]), 5)
        with pytest.raises(ValueError):
            validate_subset_indices(np.array([[0.5, 1.0]]), 5)
        with pytest.raises(ValueError):
            validate_subset_indices(np.array([0, 1]), 5)


class TestResolveChunkSize:
    def test_explicit_clamped_to_total(self):
        assert resolve_chunk_size(100, 10, 7) == 7
        assert resolve_chunk_size(3, 10, 7) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_chunk_size(0, 10, 7)

    def test_auto_respects_budget(self):
        from repro.linalg.subset_kernels import DEFAULT_CHUNK_ELEMENTS

        chunk = resolve_chunk_size(None, DEFAULT_CHUNK_ELEMENTS // 2, 100)
        assert chunk == 2
        assert resolve_chunk_size(None, 10 * DEFAULT_CHUNK_ELEMENTS, 100) == 1


class TestBatchedMeans:
    @pytest.mark.parametrize("size", [1, 4, 8, 10])
    def test_bitwise_equal_to_loop(self, gaussian_cloud, size):
        idx = subset_index_matrix(10, size)
        batched = subset_means(gaussian_cloud, idx)
        assert np.array_equal(batched, looped_means(gaussian_cloud, size))

    @pytest.mark.parametrize("name", sorted(DEGENERATE_STACKS))
    def test_bitwise_on_degenerate_stacks(self, name):
        mat = DEGENERATE_STACKS[name]
        for size in (1, 3, mat.shape[0]):
            idx = subset_index_matrix(mat.shape[0], size)
            assert np.array_equal(
                subset_means(mat, idx), looped_means(mat, size)
            )

    @pytest.mark.parametrize("chunk", [1, 3, 7, 1000])
    def test_chunking_never_changes_values(self, gaussian_cloud, chunk):
        idx = subset_index_matrix(10, 6)
        reference = subset_means(gaussian_cloud, idx)
        assert np.array_equal(
            subset_means(gaussian_cloud, idx, chunk_size=chunk), reference
        )


class TestBatchedDiameters:
    @pytest.mark.parametrize("size", [1, 2, 7, 10])
    def test_bitwise_equal_to_loop(self, gaussian_cloud, size):
        dist = pairwise_distances(gaussian_cloud)
        idx = subset_index_matrix(10, size)
        batched = subset_diameters(dist, idx)
        if size == 1:
            assert np.array_equal(batched, np.zeros(10))
        else:
            assert np.array_equal(batched, looped_diameters(dist, size))

    @pytest.mark.parametrize("chunk", [1, 5, 64])
    def test_chunking_never_changes_values(self, gaussian_cloud, chunk):
        dist = pairwise_distances(gaussian_cloud)
        idx = subset_index_matrix(10, 7)
        reference = subset_diameters(dist, idx)
        assert np.array_equal(
            subset_diameters(dist, idx, chunk_size=chunk), reference
        )

    def test_rejects_non_square_dist(self, gaussian_cloud):
        with pytest.raises(ValueError):
            subset_diameters(gaussian_cloud, subset_index_matrix(10, 3))


class TestBatchedGeometricMedians:
    @pytest.mark.parametrize("size", [1, 2, 6, 10])
    def test_matches_scalar_within_tol(self, gaussian_cloud, size):
        idx = subset_index_matrix(10, size)
        batched = subset_geometric_medians(
            gaussian_cloud, idx, tol=1e-10, max_iter=500
        )
        looped = looped_medians(gaussian_cloud, size, tol=1e-10, max_iter=500)
        np.testing.assert_allclose(batched, looped, atol=1e-7)

    @pytest.mark.parametrize("name", sorted(DEGENERATE_STACKS))
    def test_degenerate_stacks_match_scalar(self, name):
        mat = DEGENERATE_STACKS[name]
        for size in (1, 2, 3, mat.shape[0]):
            idx = subset_index_matrix(mat.shape[0], size)
            batched = subset_geometric_medians(mat, idx, tol=1e-10, max_iter=500)
            looped = looped_medians(mat, size, tol=1e-10, max_iter=500)
            np.testing.assert_allclose(batched, looped, atol=1e-7)

    def test_precomputed_dist_gather_matches_gemm_path(self, gaussian_cloud):
        idx = subset_index_matrix(10, 6)
        dist = pairwise_distances(gaussian_cloud)
        with_dist = subset_geometric_medians(gaussian_cloud, idx, dist=dist)
        without = subset_geometric_medians(gaussian_cloud, idx)
        np.testing.assert_allclose(with_dist, without, atol=1e-9)

    @pytest.mark.parametrize("chunk", [1, 4, 17, 1000])
    def test_chunking_never_changes_values(self, gaussian_cloud, chunk):
        idx = subset_index_matrix(10, 6)
        reference = subset_geometric_medians(gaussian_cloud, idx)
        chunked = subset_geometric_medians(gaussian_cloud, idx, chunk_size=chunk)
        assert np.array_equal(chunked, reference)

    def test_rejects_bad_dist_shape(self, gaussian_cloud):
        idx = subset_index_matrix(10, 3)
        with pytest.raises(ValueError):
            subset_geometric_medians(gaussian_cloud, idx, dist=np.eye(3))


class TestBatchedWeiszfeldSolver:
    def test_return_info_fields(self, rng):
        pts = rng.normal(size=(8, 5, 3))
        info = batched_geometric_median(
            pts, tol=1e-10, max_iter=500, return_info=True
        )
        assert info.points.shape == (8, 3)
        assert info.iterations.shape == (8,)
        assert info.converged.all()
        assert np.all(info.iterations <= 500)
        # Costs match the objective evaluated at the returned points.
        for k in range(8):
            expected = np.linalg.norm(pts[k] - info.points[k], axis=1).sum()
            assert info.costs[k] == pytest.approx(expected, abs=1e-8)

    def test_convergence_mask_freezes_each_set(self, rng):
        # One trivially converging set (identical points) batched with a
        # hard one: the easy set must record far fewer iterations.
        easy = np.tile([1.0, 1.0], (6, 1))
        hard = rng.normal(size=(6, 2)) * np.array([1e3, 1e-3])
        info = batched_geometric_median(
            np.stack([easy, hard]), tol=1e-12, max_iter=300, return_info=True
        )
        assert info.iterations[0] < info.iterations[1]

    def test_matches_scalar_iteration_counts_roughly(self, rng):
        pts = rng.normal(size=(5, 7, 4))
        info = batched_geometric_median(
            pts, tol=1e-10, max_iter=400, return_info=True
        )
        for k in range(5):
            scalar = geometric_median(
                pts[k], tol=1e-10, max_iter=400, return_info=True
            )
            np.testing.assert_allclose(info.points[k], scalar.point, atol=1e-7)
            assert info.converged[k] == scalar.converged

    def test_weights_shared_and_per_set(self, rng):
        pts = rng.normal(size=(4, 6, 3))
        w = rng.uniform(0.5, 2.0, size=6)
        shared = batched_geometric_median(pts, weights=w, tol=1e-10, max_iter=400)
        per_set = batched_geometric_median(
            pts, weights=np.tile(w, (4, 1)), tol=1e-10, max_iter=400
        )
        assert np.array_equal(shared, per_set)
        for k in range(4):
            scalar = geometric_median(pts[k], weights=w, tol=1e-10, max_iter=400)
            np.testing.assert_allclose(shared[k], scalar, atol=1e-7)

    def test_validation_errors(self, rng):
        pts = rng.normal(size=(3, 4, 2))
        with pytest.raises(ValueError):
            batched_geometric_median(pts[0])  # not 3-D
        with pytest.raises(ValueError):
            batched_geometric_median(pts, tol=0.0)
        with pytest.raises(ValueError):
            batched_geometric_median(pts, max_iter=0)
        with pytest.raises(ValueError):
            batched_geometric_median(pts, weights=-np.ones(4))
        with pytest.raises(ValueError):
            batched_geometric_median(pts, weights=np.zeros(4))
        with pytest.raises(ValueError):
            batched_geometric_median(pts, initial=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            batched_geometric_median(pts, pairwise=np.zeros((3, 2, 2)))

    def test_single_point_sets(self, rng):
        pts = rng.normal(size=(5, 1, 3))
        info = batched_geometric_median(pts, return_info=True)
        assert np.array_equal(info.points, pts[:, 0, :])
        assert info.converged.all()
        assert np.array_equal(info.iterations, np.zeros(5, dtype=np.int64))


class TestContextSubsetCaches:
    def test_artifacts_are_memoised_objects(self, gaussian_cloud):
        ctx = AggregationContext(gaussian_cloud)
        assert ctx.subset_indices(8) is ctx.subset_indices(8)
        assert ctx.subset_diameters(8) is ctx.subset_diameters(8)
        assert ctx.subset_means(8) is ctx.subset_means(8)
        medians = ctx.subset_geometric_medians(8, tol=1e-8, max_iter=100)
        assert medians is ctx.subset_geometric_medians(8, tol=1e-8, max_iter=100)
        # Different solver settings are cached separately.
        assert medians is not ctx.subset_geometric_medians(8, tol=1e-6, max_iter=100)

    def test_artifacts_match_kernels(self, gaussian_cloud):
        ctx = AggregationContext(gaussian_cloud)
        idx = subset_index_matrix(10, 7)
        assert np.array_equal(ctx.subset_indices(7), idx)
        dist = pairwise_distances(gaussian_cloud)
        assert np.array_equal(ctx.subset_diameters(7), subset_diameters(dist, idx))
        assert np.array_equal(ctx.subset_means(7), subset_means(gaussian_cloud, idx))
        np.testing.assert_allclose(
            ctx.subset_geometric_medians(7),
            subset_geometric_medians(gaussian_cloud, idx, dist=dist),
            atol=1e-12,
        )

    def test_subset_cache_counters(self, gaussian_cloud):
        reset_cache_stats()
        try:
            ctx = AggregationContext(gaussian_cloud)
            ctx.subset_diameters(8)  # misses: indices + diameters
            ctx.subset_diameters(8)  # hit
            ctx.subset_means(8)  # miss (indices now hit)
            stats = cache_stats()
            assert stats["subset_misses"] == 3
            assert stats["subset_hits"] == 2
            assert 0.0 < subset_cache_hit_rate() < 1.0
        finally:
            reset_cache_stats()

    def test_subset_size_validation(self, gaussian_cloud):
        ctx = AggregationContext(gaussian_cloud)
        with pytest.raises(ValueError):
            ctx.subset_indices(0)
        with pytest.raises(ValueError):
            ctx.subset_means(11)


class TestRuleLevelEquivalence:
    """BOX/MD rules through the batched path match the scalar references."""

    def _received(self, rng):
        honest = rng.normal(0.0, 1.0, size=(8, 4))
        byz = rng.normal(0.0, 1.0, size=(2, 4)) + 20.0
        return np.vstack([honest, byz])

    def test_box_mean_exact_vs_looped_reference(self, rng):
        from repro.aggregation.hyperbox_rules import HyperboxMean
        from repro.linalg.hyperbox import bounding_hyperbox

        received = self._received(rng)
        rule = HyperboxMean(n=10, t=2)
        out = rule.aggregate(received)
        # Pre-batching reference: per-tuple loop over subset means.
        aggs = looped_means(received, 8)
        reference = rule.trusted_hyperbox(received).intersect(
            bounding_hyperbox(aggs)
        )
        assert np.array_equal(out, reference.midpoint())

    def test_box_geom_matches_looped_reference_within_tol(self, rng):
        from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian
        from repro.linalg.hyperbox import bounding_hyperbox

        received = self._received(rng)
        rule = HyperboxGeometricMedian(n=10, t=2, tol=1e-10, max_iter=500)
        out = rule.aggregate(received)
        aggs = looped_medians(received, 8, tol=1e-10, max_iter=500)
        reference = rule.trusted_hyperbox(received).intersect(
            bounding_hyperbox(aggs)
        )
        np.testing.assert_allclose(out, reference.midpoint(), atol=1e-7)

    def test_md_rules_select_brute_force_subset(self, rng):
        from repro.aggregation.mda import (
            MinimumDiameterGeometricMedian,
            MinimumDiameterMean,
        )
        from repro.linalg.distances import diameter

        received = self._received(rng)
        brute = min(
            combinations(range(10), 8),
            key=lambda s: (diameter(received[list(s)]), s),
        )
        for rule in (
            MinimumDiameterMean(n=10, t=2),
            MinimumDiameterGeometricMedian(n=10, t=2),
        ):
            idx, diam = rule.minimum_diameter_set(
                received, context=AggregationContext(received)
            )
            assert idx == brute
            assert diam == pytest.approx(diameter(received[list(brute)]))

    def test_md_mean_output_exact(self, rng):
        from repro.aggregation.mda import MinimumDiameterMean

        received = self._received(rng)
        rule = MinimumDiameterMean(n=10, t=2)
        out = rule.aggregate(received)
        idx, _ = rule.minimum_diameter_set(received)
        assert np.array_equal(out, received[list(idx)].mean(axis=0))

    def test_chunked_rules_match_unchunked(self, rng):
        from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian
        from repro.aggregation.mda import MinimumDiameterMean

        received = self._received(rng)
        box = HyperboxGeometricMedian(n=10, t=2)
        box_chunked = HyperboxGeometricMedian(n=10, t=2, chunk_size=3)
        assert np.array_equal(box.aggregate(received), box_chunked.aggregate(received))
        md = MinimumDiameterMean(n=10, t=2)
        md_chunked = MinimumDiameterMean(n=10, t=2, chunk_size=5)
        assert np.array_equal(md.aggregate(received), md_chunked.aggregate(received))

    def test_aggregate_hyperbox_rejects_mismatched_context(self, rng):
        from repro.aggregation.hyperbox_rules import HyperboxMean

        received = self._received(rng)
        other = rng.normal(size=(6, 4))
        rule = HyperboxMean(n=10, t=2)
        with pytest.raises(ValueError):
            rule.aggregate_hyperbox(other, context=AggregationContext(received))
        with pytest.raises(ValueError):
            rule.decision_hyperbox(other, context=AggregationContext(received))

    def test_sampled_family_respects_row_contract(self, rng):
        received = self._received(rng)
        family = subset_family(received, 8, max_subsets=5, rng=rng)
        assert 5 <= family.shape[0] <= 7
        family_capped = subset_family(
            received, 8, max_subsets=5, rng=rng, include_full_range_extremes=False
        )
        assert family_capped.shape[0] == 5
