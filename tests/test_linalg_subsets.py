"""Tests for repro.linalg.subsets."""

from math import comb

import numpy as np
import pytest

from repro.linalg.subsets import (
    enumerate_subsets,
    minimum_diameter_subset,
    minimum_diameter_subsets,
    sample_subsets,
    subset_aggregates,
    subset_count,
)


class TestSubsetCount:
    def test_matches_comb(self):
        assert subset_count(10, 8) == comb(10, 8)

    def test_out_of_range(self):
        assert subset_count(5, 6) == 0
        assert subset_count(5, -1) == 0

    def test_edge_cases(self):
        assert subset_count(5, 0) == 1
        assert subset_count(5, 5) == 1


class TestEnumerateSubsets:
    def test_count_and_uniqueness(self):
        subsets = list(enumerate_subsets(6, 4))
        assert len(subsets) == comb(6, 4)
        assert len(set(subsets)) == len(subsets)

    def test_sorted_tuples(self):
        for subset in enumerate_subsets(5, 3):
            assert tuple(sorted(subset)) == subset

    def test_k_greater_than_m(self):
        assert list(enumerate_subsets(3, 5)) == []

    def test_negative_k(self):
        with pytest.raises(ValueError):
            list(enumerate_subsets(3, -1))


class TestSampleSubsets:
    def test_requested_count(self, rng):
        picks = sample_subsets(10, 8, 7, rng=rng)
        assert len(picks) == 7
        assert all(len(p) == 8 for p in picks)

    def test_unique_by_default(self, rng):
        picks = sample_subsets(10, 8, 20, rng=rng)
        assert len(set(picks)) == len(picks)

    def test_falls_back_to_enumeration(self, rng):
        picks = sample_subsets(5, 3, 100, rng=rng)
        assert len(picks) == comb(5, 3)

    def test_empty_when_impossible(self, rng):
        assert sample_subsets(3, 5, 4, rng=rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_subsets(5, 3, -1, rng=rng)

    @pytest.mark.parametrize("seed", range(8))
    def test_exact_count_at_high_count_total_ratio(self, seed):
        # Regression: the unique-rejection loop used to exhaust its
        # attempt budget near count == total and silently return fewer
        # subsets.  The deterministic enumeration top-up now guarantees
        # exactly `count` distinct subsets whenever count <= C(m, k).
        rng = np.random.default_rng(seed)
        total = comb(8, 4)
        picks = sample_subsets(8, 4, total - 1, rng=rng)
        assert len(picks) == total - 1
        assert len(set(picks)) == total - 1

    def test_top_up_fills_when_attempts_exhausted(self, rng):
        # Force the rejection loop to give up immediately: every subset
        # must come from the deterministic enumeration top-up.
        picks = sample_subsets(10, 8, 7, rng=rng, max_attempts=0)
        assert picks == list(enumerate_subsets(10, 8))[:7]

    def test_top_up_respects_already_sampled(self, rng):
        picks = sample_subsets(6, 3, 19, rng=rng, max_attempts=5)
        assert len(picks) == 19
        assert len(set(picks)) == 19


class TestSubsetAggregates:
    def test_exhaustive_mean(self, gaussian_cloud):
        out = subset_aggregates(gaussian_cloud, 8, lambda rows: rows.mean(axis=0))
        assert out.shape == (comb(10, 8), 5)

    def test_single_subset_when_size_equals_m(self, gaussian_cloud):
        out = subset_aggregates(gaussian_cloud, 10, lambda rows: rows.mean(axis=0))
        assert out.shape == (1, 5)
        np.testing.assert_allclose(out[0], gaussian_cloud.mean(axis=0))

    def test_sampling_caps_count(self, gaussian_cloud, rng):
        out = subset_aggregates(
            gaussian_cloud, 8, lambda rows: rows.mean(axis=0), max_subsets=5, rng=rng
        )
        # Documented row-count contract: max_subsets sampled rows plus up
        # to 2 anchored extremes when include_full_range_extremes=True.
        assert 5 <= out.shape[0] <= 5 + 2

    def test_sampling_hard_cap_without_extremes(self, gaussian_cloud, rng):
        out = subset_aggregates(
            gaussian_cloud,
            8,
            lambda rows: rows.mean(axis=0),
            max_subsets=5,
            rng=rng,
            include_full_range_extremes=False,
        )
        # Contract: disabling the anchored extremes makes max_subsets a
        # hard cap on the number of returned rows.
        assert out.shape[0] == 5

    def test_aggregates_inside_bounding_box(self, gaussian_cloud):
        out = subset_aggregates(gaussian_cloud, 8, lambda rows: rows.mean(axis=0))
        assert np.all(out >= gaussian_cloud.min(axis=0) - 1e-9)
        assert np.all(out <= gaussian_cloud.max(axis=0) + 1e-9)

    def test_invalid_subset_size(self, gaussian_cloud):
        with pytest.raises(ValueError):
            subset_aggregates(gaussian_cloud, 0, lambda rows: rows.mean(axis=0))
        with pytest.raises(ValueError):
            subset_aggregates(gaussian_cloud, 11, lambda rows: rows.mean(axis=0))


class TestMinimumDiameterSubset:
    def test_excludes_outlier(self, cloud_with_outlier):
        idx, diam = minimum_diameter_subset(cloud_with_outlier, 9)
        assert 9 not in idx
        assert diam > 0

    def test_diameter_is_correct(self, gaussian_cloud):
        from repro.linalg.distances import diameter

        idx, diam = minimum_diameter_subset(gaussian_cloud, 8)
        assert diam == pytest.approx(diameter(gaussian_cloud[list(idx)]))

    def test_is_minimum_over_exhaustive_search(self, rng):
        from repro.linalg.distances import diameter

        pts = rng.normal(size=(7, 3))
        idx, diam = minimum_diameter_subset(pts, 5)
        for subset in enumerate_subsets(7, 5):
            assert diam <= diameter(pts[list(subset)]) + 1e-12

    def test_full_set(self, gaussian_cloud):
        from repro.linalg.distances import diameter

        idx, diam = minimum_diameter_subset(gaussian_cloud, 10)
        assert idx == tuple(range(10))
        assert diam == pytest.approx(diameter(gaussian_cloud))

    def test_sampled_mode_covers_all_points(self, rng):
        pts = rng.normal(size=(12, 4))
        idx, diam = minimum_diameter_subset(pts, 9, max_subsets=10, rng=rng)
        assert len(idx) == 9

    def test_invalid_size(self, gaussian_cloud):
        with pytest.raises(ValueError):
            minimum_diameter_subset(gaussian_cloud, 0)
        with pytest.raises(ValueError):
            minimum_diameter_subset(gaussian_cloud, 11)


class TestMinimumDiameterSubsets:
    def test_all_tied_subsets_returned(self):
        # Two poles with equal sizes: every 3-subset of the 4 points has
        # the same diameter.
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        tied, diam = minimum_diameter_subsets(pts, 3)
        assert diam == pytest.approx(1.0)
        assert len(tied) == comb(4, 3)

    def test_unique_minimum(self, cloud_with_outlier):
        tied, _ = minimum_diameter_subsets(cloud_with_outlier, 9)
        assert tied == [tuple(range(9))]

    def test_contains_the_argmin(self, gaussian_cloud):
        best, _ = minimum_diameter_subset(gaussian_cloud, 8)
        tied, _ = minimum_diameter_subsets(gaussian_cloud, 8)
        assert best in tied
