"""Batch message plane acceptance tests.

Four contracts of the array-backed delivery refactor:

1. **Bitwise equivalence** — the batch plane (the new default) must
   reproduce the object plane's pre-refactor outputs exactly for every
   scheduler.  The reference numbers live in
   ``tests/fixtures/message_plane_pre_refactor.json`` /
   ``sweep_rows_pre_message_plane.jsonl``, generated at the last
   pre-refactor commit by the sibling generator script (floats survive
   the JSON round trip losslessly, so ``==`` is bitwise, and sweep rows
   compare as serialised byte strings).  Cross-plane equivalence is also
   checked live: the object plane stays available as
   ``message_plane="object"`` and must agree with the batch plane
   bitwise on matrices, senders, counters and traces.
2. **Per-node delivery resolution** — with ``node_trace`` the engines
   resolve every counter per receiver; the per-node arrays must sum
   exactly to the aggregate counters and the per-round trace, and obey
   per-node conservation (``sent == delivered + dropped/expired +
   pending``).
3. **Zero-copy message views** — ``Message`` adopts already-immutable
   payloads (batch rows) without the defensive copy, while anything a
   caller could still mutate keeps being copied.
4. **Sparse-structure transport** — a single-batch inbox's matrix
   carries a projected :class:`SparsityProfile` identical to what
   consumer-side ``detect_structure`` would claim.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.aggregation.context import AggregationContext
from repro.engine import make_scheduler
from repro.io.results import history_to_dict
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.linalg.sparsity import detect_structure, project_profile
from repro.network.batch import (
    BatchInbox,
    MESSAGE_PLANES,
    build_round_batch,
    resolve_message_plane,
)
from repro.network.delivery import full_broadcast_plan
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan

FIXTURES_DIR = Path(__file__).parent / "fixtures"
HISTORY_FIXTURE = FIXTURES_DIR / "message_plane_pre_refactor.json"
ROWS_FIXTURE = FIXTURES_DIR / "sweep_rows_pre_message_plane.jsonl"

_spec = importlib.util.spec_from_file_location(
    "make_message_plane_fixtures", FIXTURES_DIR / "make_message_plane_fixtures.py"
)
fixture_gen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(fixture_gen)

SCHEDULER_SETUPS = {
    "synchronous": {},
    "partial": {"delay": 2, "seed": 11},
    "lossy": {"drop_rate": 0.2, "crash_schedule": ((1, 1, 3),), "seed": 11},
    "asynchronous": {"wait_timeout": 2.0, "burstiness": 0.4, "seed": 11},
}


def _run_raw_exchange(scheduler: str, plane: str, *, n: int = 7, rounds: int = 5):
    """Drive ``rounds`` full-broadcast rounds; returns comparable state."""
    kwargs = dict(SCHEDULER_SETUPS[scheduler])
    engine = make_scheduler(
        scheduler, n, (n - 1,), keep_history=False, message_plane=plane, **kwargs
    )
    if scheduler == "asynchronous":
        engine.wait_for(count=n - 2)
    rng = np.random.default_rng(3)
    payloads = {node: rng.normal(size=(rounds, 4)) for node in range(n)}
    state = []
    for round_index in range(rounds):
        plans = [
            full_broadcast_plan(node, payloads[node][round_index])
            for node in range(n)
        ]
        result = engine.submit(plans, round_index)
        for node in range(n):
            inbox = result.inboxes.get(node, [])
            if len(inbox):
                state.append((node, result.received_matrix(node).tobytes(),
                              tuple(result.senders(node))))
            else:
                state.append((node, b"", ()))
    return state, engine.stats_snapshot(), engine.trace_snapshot()


# ---------------------------------------------------------------------------
# 1. bitwise equivalence
# ---------------------------------------------------------------------------

class TestPinnedFixtures:
    """Batch-plane outputs against the pre-refactor object-plane pins."""

    @pytest.fixture(scope="class")
    def pinned(self):
        return json.loads(HISTORY_FIXTURE.read_text())

    @pytest.mark.parametrize("label", sorted(fixture_gen.experiment_cases()))
    def test_experiment_history_bitwise_identical(self, pinned, label):
        config = fixture_gen.experiment_cases()[label]
        history = history_to_dict(run_experiment(config))
        assert history == pinned["histories"][label]

    def test_agreement_traces_bitwise_identical(self, pinned):
        assert fixture_gen.agreement_traces() == pinned["agreement"]

    def test_sweep_rows_byte_identical(self):
        expected = ROWS_FIXTURE.read_text().splitlines()
        assert fixture_gen.sweep_row_lines() == expected


class TestCrossPlaneEquivalence:
    """Object and batch planes agree bitwise, live, for every scheduler."""

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_SETUPS))
    def test_raw_exchange_identical(self, scheduler):
        object_out = _run_raw_exchange(scheduler, "object")
        batch_out = _run_raw_exchange(scheduler, "batch")
        assert object_out == batch_out

    def test_plane_registry(self):
        assert set(MESSAGE_PLANES) == {"batch", "object"}
        assert resolve_message_plane(None) == "batch"
        assert resolve_message_plane("OBJECT") == "object"
        with pytest.raises(ValueError, match="unknown message plane"):
            resolve_message_plane("vector")

    def test_env_fallback_selects_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESSAGE_PLANE", "object")
        engine = make_scheduler("synchronous", 3)
        assert engine.message_plane == "object"
        monkeypatch.delenv("REPRO_MESSAGE_PLANE")
        assert make_scheduler("synchronous", 3).message_plane == "batch"


# ---------------------------------------------------------------------------
# 2. per-node delivery resolution
# ---------------------------------------------------------------------------

def _run_node_traced(scheduler: str, *, rounds: int = 6, n: int = 6):
    kwargs = dict(SCHEDULER_SETUPS[scheduler])
    engine = make_scheduler(
        scheduler, n, (), keep_history=False, node_trace=True, **kwargs
    )
    if scheduler == "asynchronous":
        engine.wait_for(count=n - 1)
    rng = np.random.default_rng(9)
    for round_index in range(rounds):
        plans = [
            full_broadcast_plan(node, rng.normal(size=3)) for node in range(n)
        ]
        engine.submit(plans, round_index)
    return engine


@pytest.mark.parametrize("scheduler", ["lossy", "partial", "asynchronous"])
def test_node_stats_sum_to_aggregate_counters(scheduler):
    engine = _run_node_traced(scheduler)
    stats = engine.stats_snapshot()
    node_stats = engine.node_stats_snapshot()
    for key, values in node_stats.items():
        assert len(values) == engine.n
        assert sum(values) == stats[key], key


@pytest.mark.parametrize("scheduler", ["lossy", "partial", "asynchronous"])
def test_node_trace_rows_aggregate_to_round_trace(scheduler):
    engine = _run_node_traced(scheduler)
    trace = engine.trace_snapshot()
    node_trace = engine.node_trace_snapshot()
    assert [row["round"] for row in node_trace] == [row["round"] for row in trace]
    for agg_row, node_row in zip(trace, node_trace):
        agg_keys = {k for k in agg_row if k != "round"}
        node_keys = {k for k in node_row if k != "round"}
        assert node_keys == agg_keys
        for key in agg_keys:
            assert sum(node_row[key]) == agg_row[key], key


def test_lossy_per_node_conservation():
    engine = _run_node_traced("lossy")
    node = engine.node_stats_snapshot()
    sent = np.asarray(node["sent"])
    outcomes = (
        np.asarray(node["delivered"])
        + np.asarray(node.get("dropped", [0] * engine.n))
        + np.asarray(node.get("crash_omitted", [0] * engine.n))
    )
    assert np.array_equal(sent, outcomes)


@pytest.mark.parametrize("scheduler", ["partial", "asynchronous"])
def test_in_flight_per_node_conservation(scheduler):
    engine = _run_node_traced(scheduler)
    node = engine.node_stats_snapshot()
    pending = engine.pending_count_per_node()
    assert int(pending.sum()) == engine.pending_count()
    sent = np.asarray(node["sent"])
    accounted = np.asarray(node["delivered"]) + pending
    assert np.array_equal(sent, accounted)
    # After a reset the in-flight tail is booked as expired, per node.
    engine.reset()
    node = engine.node_stats_snapshot()
    expired = np.asarray(node.get("expired_at_reset", [0] * engine.n))
    assert np.array_equal(np.asarray(node["sent"]),
                          np.asarray(node["delivered"]) + expired)
    assert engine.pending_count() == 0


def test_node_trace_requires_batch_plane():
    with pytest.raises(ValueError, match="batch"):
        make_scheduler("lossy", 4, drop_rate=0.1,
                       message_plane="object", node_trace=True)


def test_experiment_config_node_trace_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(node_trace=True)  # synchronous default scheduler
    config = ExperimentConfig(scheduler="lossy", drop_rate=0.1, node_trace=True)
    assert config.node_trace


def test_experiment_node_trace_populates_history():
    config = fixture_gen.base_config(
        scheduler="lossy", drop_rate=0.15, crash_schedule=((1, 1, 3),),
        node_trace=True,
    )
    history = run_experiment(config)
    assert history.node_stats
    for key, values in history.node_stats.items():
        assert sum(values) == history.network_stats[key], key
    assert history.node_delivery_trace
    # The flag changes recording only, never delivery or training.
    baseline = run_experiment(config.with_overrides(node_trace=False))
    assert history.accuracies() == baseline.accuracies()
    assert history.network_stats == baseline.network_stats
    # Round trip through the JSON layer.
    from repro.io.results import history_from_dict

    restored = history_from_dict(history_to_dict(history))
    assert restored.node_stats == history.node_stats
    assert restored.node_delivery_trace == history.node_delivery_trace


def test_config_dict_elides_default_node_trace():
    from repro.sweep.grid import config_from_dict, config_to_dict

    default = config_to_dict(ExperimentConfig())
    assert "node_trace" not in default
    assert not config_from_dict(default).node_trace
    traced = config_to_dict(
        ExperimentConfig(scheduler="lossy", drop_rate=0.1, node_trace=True)
    )
    assert traced["node_trace"] is True
    assert config_from_dict(traced).node_trace


def test_node_stats_summary_reading():
    from repro.analysis.reporting import node_stats_summary

    summary = node_stats_summary(
        {"sent": [10, 10, 10], "delivered": [10, 4, 0]}
    )
    assert summary["nodes"] == 3
    assert summary["totals"] == {"sent": 30, "delivered": 14}
    assert summary["worst_node"] == 2
    assert summary["worst_node_deliv"] == 0.0


# ---------------------------------------------------------------------------
# 3. zero-copy message views / mutation protection
# ---------------------------------------------------------------------------

class TestMessagePayloadTrust:
    def test_writable_payload_is_copied(self):
        source = np.ones(4)
        message = Message(sender=0, round_index=0, payload=source)
        source[0] = 99.0
        assert message.payload[0] == 1.0
        assert not message.payload.flags.writeable

    def test_readonly_view_of_writable_base_is_copied(self):
        # The owner of the base could still mutate through its own
        # reference, so a read-only *view* must not be trusted.
        base = np.arange(4.0)
        view = base[:]
        view.setflags(write=False)
        message = Message(sender=0, round_index=0, payload=view)
        base[0] = 99.0
        assert message.payload[0] == 0.0

    def test_immutable_chain_is_adopted_without_copy(self):
        owned = np.arange(4.0)
        owned.setflags(write=False)
        message = Message(sender=0, round_index=0, payload=owned)
        assert message.payload is owned

    def test_batch_row_view_is_adopted_without_copy(self):
        plans = {i: full_broadcast_plan(i, np.arange(3.0) + i) for i in range(3)}
        batch = build_round_batch(plans, 0, 3)
        inbox = BatchInbox.single(batch, batch.full_rows())
        message = inbox[1]
        assert np.shares_memory(message.payload, batch.payloads)
        assert not message.payload.flags.writeable

    def test_with_payload_adopts_trusted_without_copy(self):
        message = Message(sender=0, round_index=0, payload=np.ones(3))
        replacement = np.full(3, 2.0)
        replacement.setflags(write=False)
        assert message.with_payload(replacement).payload is replacement

    def test_untrusted_inputs_still_validated(self):
        with pytest.raises(ValueError, match="non-empty"):
            Message(sender=0, round_index=0, payload=np.empty(0))
        empty = np.empty(0, dtype=np.float64)
        empty.setflags(write=False)
        with pytest.raises(ValueError, match="non-empty"):
            Message(sender=0, round_index=0, payload=empty)


# ---------------------------------------------------------------------------
# batch container behaviour
# ---------------------------------------------------------------------------

class TestBatchInbox:
    @pytest.fixture
    def batch(self):
        plans = {
            i: full_broadcast_plan(i, np.arange(4.0) * (i + 1)) for i in range(5)
        }
        return build_round_batch(plans, 2, 5)

    def test_sequence_protocol(self, batch):
        inbox = BatchInbox.single(batch, np.asarray([0, 2, 4], dtype=np.int64))
        assert len(inbox) == 3
        assert [m.sender for m in inbox] == [0, 2, 4]
        assert inbox[-1].sender == 4
        assert [m.sender for m in inbox[1:]] == [2, 4]
        with pytest.raises(IndexError):
            inbox[3]
        assert inbox.senders() == [0, 2, 4]
        assert inbox[1] is inbox[1]  # lazy views are cached

    def test_matrix_matches_message_stacking(self, batch):
        inbox = BatchInbox.single(batch, np.asarray([1, 3], dtype=np.int64))
        stacked = np.stack([m.payload for m in inbox], axis=0)
        assert inbox.matrix().tobytes() == stacked.tobytes()

    def test_full_inbox_matrix_is_zero_copy(self, batch):
        inbox = BatchInbox.single(batch, batch.full_rows())
        matrix = inbox.matrix()
        assert np.shares_memory(matrix, batch.payloads)

    def test_empty_inbox(self):
        inbox = BatchInbox.empty()
        assert len(inbox) == 0
        assert inbox.senders() == []
        with pytest.raises(ValueError, match="empty inbox"):
            inbox.matrix()

    def test_unicast_batch_builds_delivery_mask(self):
        plans = {
            0: full_broadcast_plan(0, np.ones(2)),
            1: BroadcastPlan(sender=1, payload=np.ones(2) * 2,
                             recipients=frozenset({2})),
        }
        batch = build_round_batch(plans, 0, 3)
        mask = batch.delivers_mask()
        assert mask[0].all()  # earlier full broadcast backfilled
        assert mask[1].tolist() == [False, False, True]

    def test_dimension_mismatch_rejected(self):
        plans = {
            0: full_broadcast_plan(0, np.ones(2)),
            1: full_broadcast_plan(1, np.ones(3)),
        }
        with pytest.raises(ValueError, match="dimension mismatch"):
            build_round_batch(plans, 0, 2)


# ---------------------------------------------------------------------------
# 4. sparse-structure transport
# ---------------------------------------------------------------------------

class TestProfileTransport:
    @pytest.fixture
    def structured_batch(self):
        # Duplicate rows (0 == 2) and an all-zero column.
        rows = np.asarray([
            [1.0, 0.0, 3.0, 0.0],
            [2.0, 0.0, 4.0, 5.0],
            [1.0, 0.0, 3.0, 0.0],
            [6.0, 0.0, 7.0, 8.0],
        ])
        plans = {i: full_broadcast_plan(i, rows[i]) for i in range(4)}
        return build_round_batch(plans, 0, 4)

    @staticmethod
    def _claims(profile):
        return (
            profile.row_group_ids.tolist(),
            profile.num_unique_rows,
            profile.nonzero_columns.tolist(),
            profile.num_zero_columns,
        )

    def test_projected_profile_matches_detection(self, structured_batch):
        for rows in ([0, 1, 2, 3], [0, 2, 3], [1, 3], [2]):
            selection = np.asarray(rows, dtype=np.int64)
            matrix = np.asarray(structured_batch.payloads)[selection]
            projected = project_profile(
                structured_batch.profile, selection, matrix
            )
            assert self._claims(projected) == self._claims(detect_structure(matrix))

    def test_inbox_matrix_carries_provider(self, structured_batch):
        inbox = BatchInbox.single(
            structured_batch, np.asarray([0, 2, 3], dtype=np.int64)
        )
        matrix = inbox.matrix()
        provider = getattr(matrix, "_profile_provider", None)
        assert provider is not None
        profile = provider(np.asarray(matrix))
        assert self._claims(profile) == self._claims(
            detect_structure(np.asarray(matrix))
        )
        # Derived arrays must drop the provider: a profile describes one
        # exact matrix, not anything computed from it.
        assert getattr(matrix + 1.0, "_profile_provider", None) is None
        assert getattr(matrix[1:], "_profile_provider", None) is None

    def test_context_consumes_transported_profile(self, structured_batch):
        inbox = BatchInbox.single(structured_batch, structured_batch.full_rows())
        context = AggregationContext(inbox.matrix())
        assert self._claims(context.profile) == self._claims(
            detect_structure(structured_batch.payloads)
        )

    def test_provider_rejects_foreign_matrix(self, structured_batch):
        inbox = BatchInbox.single(structured_batch, structured_batch.full_rows())
        provider = inbox.matrix()._profile_provider
        assert provider(np.zeros((2, 2))) is None
