"""Tests for the network simulation substrate (message, broadcast, rounds)."""

import numpy as np
import pytest

from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast
from repro.network.synchronous import RoundResult, SynchronousNetwork, full_broadcast_plan
from repro.network.topology import complete_topology, neighbours, validate_topology


class TestMessage:
    def test_payload_copied_and_readonly(self):
        payload = np.array([1.0, 2.0])
        msg = Message(sender=0, round_index=0, payload=payload)
        payload[0] = 99.0
        assert msg.payload[0] == 1.0
        with pytest.raises(ValueError):
            msg.payload[0] = 5.0

    def test_dimension(self):
        msg = Message(sender=1, round_index=2, payload=np.zeros(7))
        assert msg.dimension == 7

    def test_invalid_sender(self):
        with pytest.raises(ValueError):
            Message(sender=-1, round_index=0, payload=np.zeros(2))

    def test_invalid_round(self):
        with pytest.raises(ValueError):
            Message(sender=0, round_index=-1, payload=np.zeros(2))

    def test_empty_payload(self):
        with pytest.raises(ValueError):
            Message(sender=0, round_index=0, payload=np.array([]))

    def test_with_payload(self):
        msg = Message(sender=0, round_index=3, payload=np.zeros(2), metadata={"a": 1})
        new = msg.with_payload(np.ones(2))
        assert new.sender == 0 and new.round_index == 3
        np.testing.assert_allclose(new.payload, [1.0, 1.0])
        assert new.metadata == {"a": 1}


class TestTopology:
    def test_complete_graph_size(self):
        graph = complete_topology(5)
        validate_topology(graph, 5)
        assert set(neighbours(graph, 0)) == {0, 1, 2, 3, 4}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            complete_topology(0)

    def test_validate_mismatch(self):
        graph = complete_topology(4)
        with pytest.raises(ValueError):
            validate_topology(graph, 5)

    def test_neighbours_unknown_node(self):
        graph = complete_topology(3)
        with pytest.raises(ValueError):
            neighbours(graph, 7)


class TestReliableBroadcast:
    def test_full_delivery(self):
        rb = ReliableBroadcast(4)
        plans = [BroadcastPlan(sender=i, payload=np.full(2, float(i))) for i in range(4)]
        inbox = rb.deliver(plans, round_index=0)
        assert all(len(inbox[node]) == 4 for node in range(4))

    def test_silent_sender_omitted(self):
        rb = ReliableBroadcast(3)
        plans = [
            BroadcastPlan(sender=0, payload=np.zeros(2)),
            BroadcastPlan(sender=1, payload=None),
            BroadcastPlan(sender=2, payload=np.ones(2)),
        ]
        inbox = rb.deliver(plans, round_index=0)
        assert [m.sender for m in inbox[0]] == [0, 2]

    def test_honest_sender_cannot_restrict_recipients(self):
        rb = ReliableBroadcast(3, byzantine=[2])
        bad_plan = BroadcastPlan(sender=0, payload=np.zeros(2), recipients=frozenset({1}))
        with pytest.raises(ValueError):
            rb.validate_plan(bad_plan)

    def test_byzantine_selective_omission(self):
        rb = ReliableBroadcast(4, byzantine=[3])
        plans = [BroadcastPlan(sender=i, payload=np.full(2, float(i))) for i in range(3)]
        plans.append(
            BroadcastPlan(sender=3, payload=np.full(2, 99.0), recipients=frozenset({0, 1}))
        )
        inbox = rb.deliver(plans, round_index=1)
        assert 3 in [m.sender for m in inbox[0]]
        assert 3 in [m.sender for m in inbox[1]]
        assert 3 not in [m.sender for m in inbox[2]]

    def test_no_equivocation_one_plan_per_sender(self):
        rb = ReliableBroadcast(3, byzantine=[0])
        plans = [
            BroadcastPlan(sender=0, payload=np.zeros(2)),
            BroadcastPlan(sender=0, payload=np.ones(2)),
        ]
        with pytest.raises(ValueError):
            rb.deliver(plans, round_index=0)

    def test_delivery_order_deterministic_by_sender(self):
        rb = ReliableBroadcast(3)
        plans = [BroadcastPlan(sender=i, payload=np.full(1, float(i))) for i in (2, 0, 1)]
        inbox = rb.deliver(plans, round_index=0)
        assert [m.sender for m in inbox[0]] == [0, 1, 2]

    def test_out_of_range_byzantine_ids(self):
        with pytest.raises(ValueError):
            ReliableBroadcast(3, byzantine=[5])

    def test_out_of_range_sender(self):
        rb = ReliableBroadcast(2)
        with pytest.raises(ValueError):
            rb.validate_plan(BroadcastPlan(sender=5, payload=np.zeros(1)))


class TestSynchronousNetwork:
    def test_round_delivers_to_honest_nodes(self):
        net = SynchronousNetwork(4, byzantine=[3])
        values = {i: np.full(3, float(i)) for i in range(3)}
        result = net.run_round(
            0,
            honest_plan=lambda node, r: full_broadcast_plan(node, values[node]),
            adversary_plan=lambda node, r, honest: BroadcastPlan(sender=node, payload=np.full(3, -1.0)),
        )
        assert isinstance(result, RoundResult)
        for node in (0, 1, 2):
            mat = result.received_matrix(node)
            assert mat.shape == (4, 3)
            assert result.senders(node) == [0, 1, 2, 3]

    def test_silent_adversary(self):
        net = SynchronousNetwork(4, byzantine=[3])
        values = {i: np.zeros(2) for i in range(3)}
        result = net.run_round(
            0, honest_plan=lambda node, r: full_broadcast_plan(node, values[node])
        )
        for node in (0, 1, 2):
            assert result.received_matrix(node).shape == (3, 2)

    def test_quorum_violation_detected(self):
        net = SynchronousNetwork(4, byzantine=[2, 3])
        net.require_quorum(3)
        values = {i: np.zeros(2) for i in (0, 1)}
        with pytest.raises(RuntimeError):
            net.run_round(
                0, honest_plan=lambda node, r: full_broadcast_plan(node, values[node])
            )

    def test_honest_plan_must_have_payload(self):
        net = SynchronousNetwork(2)
        with pytest.raises(ValueError):
            net.run_round(0, honest_plan=lambda node, r: BroadcastPlan(sender=node, payload=None))

    def test_honest_plan_sender_mismatch(self):
        net = SynchronousNetwork(2)
        with pytest.raises(ValueError):
            net.run_round(
                0, honest_plan=lambda node, r: full_broadcast_plan((node + 1) % 2, np.zeros(1))
            )

    def test_history_recorded_and_reset(self):
        net = SynchronousNetwork(3)
        values = {i: np.zeros(1) for i in range(3)}
        net.run_round(0, honest_plan=lambda node, r: full_broadcast_plan(node, values[node]))
        assert len(net.history) == 1
        net.reset_history()
        assert net.history == []

    def test_received_matrix_empty_inbox_raises(self):
        result = RoundResult(round_index=0, inboxes={0: []})
        with pytest.raises(ValueError):
            result.received_matrix(0)
