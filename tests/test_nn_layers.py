"""Tests for the NumPy neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU


def numerical_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = fn()
        x[idx] = orig - eps
        minus = fn()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_linear(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.params["W"] + layer.params["b"]
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_input_gradient_check(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        upstream = rng.normal(size=(2, 3))
        layer.zero_grads()
        layer.forward(x)
        grad_x = layer.backward(upstream)
        num = numerical_gradient(lambda: float((layer.forward(x, training=False) * upstream).sum()), x)
        np.testing.assert_allclose(grad_x, num, atol=1e-5)

    def test_weight_gradient_check(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))
        layer.zero_grads()
        layer.forward(x)
        layer.backward(upstream)
        num_w = numerical_gradient(
            lambda: float((layer.forward(x, training=False) * upstream).sum()),
            layer.params["W"],
        )
        np.testing.assert_allclose(layer.grads["W"], num_w, atol=1e-5)
        num_b = numerical_gradient(
            lambda: float((layer.forward(x, training=False) * upstream).sum()),
            layer.params["b"],
        )
        np.testing.assert_allclose(layer.grads["b"], num_b, atol=1e-5)

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_wrong_input_dim(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 5)))

    def test_num_parameters(self, rng):
        layer = Dense(4, 3, rng=rng)
        assert layer.num_parameters == 4 * 3 + 3

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_negative(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])

    def test_no_parameters(self):
        assert ReLU().num_parameters == 0


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 4, 4, 2))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        assert back.shape == x.shape
        np.testing.assert_allclose(back, x)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_training_zeroes_some_units(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((10, 100))
        out = layer.forward(x, training=True)
        assert (out == 0.0).sum() > 0

    def test_inverted_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = np.ones((50, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((4, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConv2D:
    def test_forward_shape_same_padding(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 8, 8, 8)

    def test_forward_shape_valid_padding(self, rng):
        layer = Conv2D(1, 4, kernel_size=3, padding=0, rng=rng)
        out = layer.forward(rng.normal(size=(2, 6, 6, 1)))
        assert out.shape == (2, 4, 4, 4)

    def test_known_convolution_value(self):
        layer = Conv2D(1, 1, kernel_size=3, padding=0)
        layer.params["W"] = np.ones((9, 1))
        layer.params["b"] = np.zeros(1)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        # Top-left window sums 0+1+2+4+5+6+8+9+10 = 45.
        assert out[0, 0, 0, 0] == pytest.approx(45.0)

    def test_input_gradient_check(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(1, 5, 5, 2))
        upstream = rng.normal(size=(1, 5, 5, 3))
        layer.zero_grads()
        layer.forward(x)
        grad_x = layer.backward(upstream)
        num = numerical_gradient(
            lambda: float((layer.forward(x, training=False) * upstream).sum()), x, eps=1e-5
        )
        np.testing.assert_allclose(grad_x, num, atol=1e-4)

    def test_weight_gradient_check(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 4, 4, 1))
        upstream = rng.normal(size=(2, 4, 4, 2))
        layer.zero_grads()
        layer.forward(x)
        layer.backward(upstream)
        num_w = numerical_gradient(
            lambda: float((layer.forward(x, training=False) * upstream).sum()),
            layer.params["W"],
            eps=1e-5,
        )
        np.testing.assert_allclose(layer.grads["W"], num_w, atol=1e-4)

    def test_wrong_channel_count(self, rng):
        layer = Conv2D(3, 4, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 8, 8, 1)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=3, padding=-1)


class TestMaxPool2D:
    def test_forward_values(self):
        layer = MaxPool2D(pool_size=2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, :, :, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(pool_size=2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2, 2, 1)))
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 1, 1, 0] == pytest.approx(1.0)  # position of value 5
        assert grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_input_gradient_check(self, rng):
        layer = MaxPool2D(pool_size=2)
        x = rng.normal(size=(1, 4, 4, 2))
        upstream = rng.normal(size=(1, 2, 2, 2))
        layer.forward(x)
        grad_x = layer.backward(upstream)
        num = numerical_gradient(
            lambda: float((layer.forward(x, training=False) * upstream).sum()), x, eps=1e-6
        )
        np.testing.assert_allclose(grad_x, num, atol=1e-4)

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(pool_size=0)

    def test_rejects_non_4d_input(self):
        with pytest.raises(ValueError):
            MaxPool2D().forward(np.zeros((2, 4, 4)))
