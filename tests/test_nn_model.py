"""Tests for losses, the Sequential model, optimiser and architectures."""

import numpy as np
import pytest

from repro.nn.architectures import build_cifarnet, build_mlp, model_for_dataset
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import one_hot, softmax, softmax_cross_entropy
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs[0, :2], 0.5, atol=1e-9)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform_prediction(self):
        logits = np.zeros((4, 10))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10.0), rel=1e-6)

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 3, 2])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        for i in range(3):
            for j in range(5):
                plus = logits.copy(); plus[i, j] += eps
                minus = logits.copy(); minus[i, j] -= eps
                num[i, j] = (softmax_cross_entropy(plus, labels)[0] - softmax_cross_entropy(minus, labels)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_batch_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 4)), np.zeros(2, dtype=int))


class TestSequential:
    def make_model(self, rng):
        return Sequential([Dense(6, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng)])

    def test_flat_parameter_round_trip(self, rng):
        model = self.make_model(rng)
        flat = model.get_flat_parameters()
        assert flat.shape == (model.num_parameters,)
        model.set_flat_parameters(np.zeros_like(flat))
        assert np.all(model.get_flat_parameters() == 0.0)
        model.set_flat_parameters(flat)
        np.testing.assert_allclose(model.get_flat_parameters(), flat)

    def test_set_flat_parameters_wrong_length(self, rng):
        model = self.make_model(rng)
        with pytest.raises(ValueError):
            model.set_flat_parameters(np.zeros(3))

    def test_gradient_descent_reduces_loss(self, rng):
        model = self.make_model(rng)
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        params = model.get_flat_parameters()
        loss0, grad = model.gradient(x, y)
        for _ in range(60):
            params = params - 0.5 * grad
            model.set_flat_parameters(params)
            loss, grad = model.gradient(x, y)
        assert loss < loss0 * 0.7

    def test_gradient_matches_numerical(self, rng):
        model = Sequential([Dense(4, 3, rng=rng)])
        x = rng.normal(size=(5, 4))
        y = rng.integers(0, 3, size=5)
        _, grad = model.gradient(x, y)
        flat = model.get_flat_parameters()
        eps = 1e-6
        num = np.zeros_like(flat)
        for k in range(flat.size):
            for sign, store in ((1, "plus"), (-1, "minus")):
                pass
            plus = flat.copy(); plus[k] += eps
            model.set_flat_parameters(plus)
            lp = softmax_cross_entropy(model.forward(x, training=False), y)[0]
            minus = flat.copy(); minus[k] -= eps
            model.set_flat_parameters(minus)
            lm = softmax_cross_entropy(model.forward(x, training=False), y)[0]
            num[k] = (lp - lm) / (2 * eps)
        model.set_flat_parameters(flat)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_predict_and_accuracy(self, rng):
        model = self.make_model(rng)
        x = rng.normal(size=(10, 6))
        preds = model.predict(x)
        assert preds.shape == (10,)
        assert set(np.unique(preds)).issubset({0, 1, 2})
        acc = model.evaluate_accuracy(x, preds)
        assert acc == pytest.approx(1.0)

    def test_predict_proba_sums_to_one(self, rng):
        model = self.make_model(rng)
        probs = model.predict_proba(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_clone_architecture_independent(self, rng):
        model = self.make_model(rng)
        clone = model.clone_architecture()
        clone.set_flat_parameters(np.zeros(clone.num_parameters))
        assert not np.all(model.get_flat_parameters() == 0.0)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_evaluate_accuracy_empty_rejected(self, rng):
        model = self.make_model(rng)
        with pytest.raises(ValueError):
            model.evaluate_accuracy(np.zeros((0, 6)), np.zeros(0))


class TestSGD:
    def test_step_direction(self):
        sgd = SGD(learning_rate=0.1)
        out = sgd.step(np.array([1.0, 1.0]), np.array([1.0, -1.0]), 0)
        np.testing.assert_allclose(out, [0.9, 1.1])

    def test_decay_schedule(self):
        sgd = SGD(learning_rate=0.1, total_rounds=10)
        assert sgd.effective_learning_rate(0) == pytest.approx(0.1)
        assert sgd.effective_learning_rate(10) < 0.1
        assert sgd.decay() == pytest.approx(0.01)

    def test_no_decay_without_total_rounds(self):
        sgd = SGD(learning_rate=0.1)
        assert sgd.effective_learning_rate(100) == pytest.approx(0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SGD().step(np.zeros(3), np.zeros(4))

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            SGD().effective_learning_rate(-1)


class TestArchitectures:
    def test_mlp_structure(self):
        model = build_mlp(49, hidden_sizes=(16, 8), num_classes=10, seed=0)
        out = model.forward(np.zeros((2, 49)), training=False)
        assert out.shape == (2, 10)

    def test_mlp_deterministic_given_seed(self):
        a = build_mlp(20, hidden_sizes=(8,), seed=3).get_flat_parameters()
        b = build_mlp(20, hidden_sizes=(8,), seed=3).get_flat_parameters()
        np.testing.assert_allclose(a, b)

    def test_mlp_invalid_hidden(self):
        with pytest.raises(ValueError):
            build_mlp(10, hidden_sizes=())

    def test_cifarnet_forward(self):
        model = build_cifarnet((16, 16, 3), 10, conv_channels=(4, 8), dense_width=16, seed=0)
        out = model.forward(np.zeros((2, 16, 16, 3)), training=False)
        assert out.shape == (2, 10)

    def test_cifarnet_too_many_pools(self):
        with pytest.raises(ValueError):
            build_cifarnet((4, 4, 3), 10, conv_channels=(4, 8, 16, 32))

    def test_model_for_dataset_dispatch(self):
        mlp = model_for_dataset("synthetic-mnist", (28, 28), 10, seed=0)
        assert mlp.name == "mlp"
        cnn = model_for_dataset("synthetic-cifar10", (32, 32, 3), 10, seed=0)
        assert cnn.name == "cifarnet"


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])
