"""Property-based tests (hypothesis) for the core geometric invariants.

These cover the invariants the paper's correctness arguments rest on:

- the Weiszfeld output never leaves the bounding box of its inputs and
  (approximately) minimises the sum of distances,
- hyperbox algebra (intersection, midpoint, E_max) behaves like interval
  arithmetic in every coordinate,
- the trimmed (locally trusted) hyperbox is contained in the honest
  bounding box whenever at most ``trim`` Byzantine values are present
  per coordinate,
- the minimum covering ball covers its points,
- the BOX-GEOM output always lies in the trusted hyperbox,
- trimmed mean stays within the trimmed per-coordinate range.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian
from repro.aggregation.mean import TrimmedMean
from repro.linalg.covering_ball import minimum_covering_ball
from repro.linalg.distances import diameter
from repro.linalg.geometric_median import geometric_median, geometric_median_cost
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def matrices(min_rows=2, max_rows=12, min_cols=1, max_cols=6):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite_floats,
    )


class TestGeometricMedianProperties:
    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_output_in_bounding_box(self, mat):
        med = geometric_median(mat)
        assert np.all(med >= mat.min(axis=0) - 1e-6)
        assert np.all(med <= mat.max(axis=0) + 1e-6)

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_cost_not_worse_than_mean_or_inputs(self, mat):
        med = geometric_median(mat, tol=1e-10, max_iter=500)
        cost = geometric_median_cost(mat, med)
        assert cost <= geometric_median_cost(mat, mat.mean(axis=0)) + 1e-6
        for row in mat:
            assert cost <= geometric_median_cost(mat, row) + 1e-6

    @given(matrices(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_equivariance(self, mat, scale):
        a = geometric_median(mat, tol=1e-10, max_iter=500)
        b = geometric_median(scale * mat, tol=1e-10, max_iter=500)
        tol = 1e-4 * max(1.0, float(np.abs(mat).max())) * scale
        assert np.linalg.norm(b - scale * a) <= tol + 1e-6


class TestHyperboxProperties:
    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_bounding_box_contains_points_and_midpoint(self, mat):
        box = bounding_hyperbox(mat)
        assert all(box.contains(row) for row in mat)
        assert box.contains(box.midpoint())

    @given(matrices(min_rows=5))
    @settings(max_examples=40, deadline=None)
    def test_trimmed_box_contained_in_bounding_box(self, mat):
        trim = (mat.shape[0] - 1) // 2
        box = trimmed_hyperbox(mat, trim)
        assert bounding_hyperbox(mat).contains_box(box)

    @given(matrices(), matrices())
    @settings(max_examples=40, deadline=None)
    def test_intersection_contained_in_both(self, a, b):
        if a.shape[1] != b.shape[1]:
            a = a[:, : min(a.shape[1], b.shape[1])]
            b = b[:, : min(a.shape[1], b.shape[1])]
        box_a, box_b = bounding_hyperbox(a), bounding_hyperbox(b)
        inter = box_a.intersect(box_b)
        if not inter.is_empty:
            assert box_a.contains_box(inter)
            assert box_b.contains_box(inter)
            assert box_a.contains(inter.midpoint()) and box_b.contains(inter.midpoint())

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_emax_at_most_diameter(self, mat):
        box = bounding_hyperbox(mat)
        assert box.max_edge_length() <= diameter(mat) + 1e-9


class TestCoveringBallProperties:
    @given(matrices(max_rows=20, max_cols=4))
    @settings(max_examples=30, deadline=None)
    def test_ball_covers_and_radius_reasonable(self, mat):
        ball = minimum_covering_ball(mat)
        assert ball.contains_all(mat)
        diam = diameter(mat)
        assert ball.radius <= diam + 1e-7
        assert ball.radius >= diam / 2.0 - 1e-7


class TestAggregationProperties:
    @given(matrices(min_rows=4, max_rows=10, max_cols=4))
    @settings(max_examples=25, deadline=None)
    def test_box_geom_output_in_trusted_hyperbox(self, mat):
        n = mat.shape[0]
        t = max(1, (n - 1) // 3)
        if t * 3 >= n:
            return
        rule = HyperboxGeometricMedian(n=n, t=t)
        out = rule.aggregate(mat)
        assert rule.trusted_hyperbox(mat).contains(out, atol=1e-7)

    @given(matrices(min_rows=5, max_rows=12, max_cols=4))
    @settings(max_examples=25, deadline=None)
    def test_trimmed_mean_within_trimmed_range(self, mat):
        m = mat.shape[0]
        trim = (m - 1) // 3
        rule = TrimmedMean(trim=trim)
        out = rule.aggregate(mat)
        ordered = np.sort(mat, axis=0)
        assert np.all(out >= ordered[trim] - 1e-9)
        assert np.all(out <= ordered[m - trim - 1] + 1e-9)

    @given(matrices(min_rows=4, max_rows=9, max_cols=3))
    @settings(max_examples=25, deadline=None)
    def test_aggregation_permutation_invariance(self, mat):
        rng = np.random.default_rng(0)
        perm = rng.permutation(mat.shape[0])
        n, t = mat.shape[0], max(1, (mat.shape[0] - 1) // 3)
        if t * 3 >= n:
            return
        rule = HyperboxGeometricMedian(n=n, t=t)
        np.testing.assert_allclose(rule.aggregate(mat), rule.aggregate(mat[perm]), atol=1e-7)


class TestCellIdProperties:
    """ScenarioGrid.cells() never yields duplicate or ambiguous ids."""

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs",), min_codepoint=32
                ),
                min_size=0,
                max_size=12,
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_values_yield_distinct_parseable_ids(self, notes):
        from repro.learning.experiment import ExperimentConfig
        from repro.sweep import ScenarioGrid
        from repro.sweep.grid import parse_cell_id

        base = ExperimentConfig(
            attack=None, num_byzantine=0, num_clients=4, rounds=1,
            num_samples=40, batch_size=8, mlp_hidden=(8, 4), seed=5,
        )
        # attack_kwargs accepts arbitrary payloads, so any unicode text
        # can ride into the cell id through its rendering.
        grid = ScenarioGrid(
            base, {"attack_kwargs": [{"note": note} for note in notes]}
        )
        cells = grid.cells()
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids) == len(notes)
        for cell in cells:
            parsed = parse_cell_id(cell.cell_id)
            assert list(parsed) == ["attack_kwargs"]
            assert parsed["attack_kwargs"] == str(cell.axes["attack_kwargs"])
