"""Property-based tests for the aggregation rules.

Hypothesis-style properties checked over many seeded random instances
(deterministic generation, so failures are reproducible by seed):

- **permutation invariance** — shuffling the received vectors must not
  change any rule's aggregate,
- **translation equivariance** — shifting every input by a constant
  vector shifts the mean / geometric-median / hyperbox aggregates by
  exactly that vector,
- **shared-context equality** — aggregating through a shared
  :class:`~repro.aggregation.context.AggregationContext` is bitwise
  identical to the uncached per-rule path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import aggregate_all, make_rule
from repro.aggregation.context import (
    AggregationContext,
    cache_stats,
    reset_cache_stats,
)

#: Rules whose aggregate is a unique function of the input *set* on
#: generic-position inputs (no tie-breaking involved).  The MD rules are
#: excluded: their minimum-diameter subset is frequently tied, the tie
#: is broken by index order, and index order is exactly what a
#: permutation changes — they get the tie-aware property below instead.
PERMUTATION_INVARIANT_RULES = (
    "mean",
    "cw-median",
    "trimmed-mean",
    "geomedian",
    "medoid",
    "krum",
    "multi-krum",
    "box-mean",
    "box-geom",
)

#: Rules whose aggregate must shift exactly with a constant translation.
TRANSLATION_EQUIVARIANT_RULES = (
    "mean",
    "geomedian",
    "md-mean",
    "md-geom",
    "box-mean",
    "box-geom",
)

#: Rules that consume the shared pairwise-distance matrix.
DISTANCE_RULES = ("krum", "multi-krum", "medoid", "md-mean", "md-geom")

N, T = 8, 2
TRIALS = 10


def random_stack(seed: int, *, m: int = N, d: int = 5) -> np.ndarray:
    """A generic-position random stack (no ties, so argmin picks are stable)."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 2.0, size=(m, d))


@pytest.mark.parametrize("rule_name", PERMUTATION_INVARIANT_RULES)
def test_permutation_invariance(rule_name):
    for trial in range(TRIALS):
        vectors = random_stack(100 + trial)
        rng = np.random.default_rng(500 + trial)
        perm = rng.permutation(vectors.shape[0])
        rule = make_rule(rule_name, n=N, t=T)
        base = rule.aggregate(vectors)
        permuted = rule.aggregate(vectors[perm])
        np.testing.assert_allclose(
            permuted, base, rtol=1e-9, atol=1e-9,
            err_msg=f"{rule_name} is not permutation invariant (trial {trial})",
        )


@pytest.mark.parametrize("rule_name", ("md-mean", "md-geom"))
def test_md_rules_permutation_invariant_up_to_tie_break(rule_name):
    """A permuted MD aggregate is the aggregate of *some* tied subset.

    The minimum diameter itself is permutation invariant; only the
    choice among equal-diameter subsets may follow the new index order.
    """
    from repro.linalg.subsets import minimum_diameter_subsets

    for trial in range(TRIALS):
        vectors = random_stack(100 + trial)
        perm = np.random.default_rng(500 + trial).permutation(vectors.shape[0])
        rule = make_rule(rule_name, n=N, t=T)
        _, base_diam = rule.minimum_diameter_set(vectors)
        _, perm_diam = rule.minimum_diameter_set(vectors[perm])
        assert perm_diam == pytest.approx(base_diam, rel=1e-12)

        tied, _ = minimum_diameter_subsets(vectors, N - T)
        candidates = [rule._subset_aggregate(vectors[list(idx)]) for idx in tied]
        permuted = rule.aggregate(vectors[perm])
        assert any(
            np.allclose(permuted, candidate, rtol=1e-9, atol=1e-9)
            for candidate in candidates
        ), f"{rule_name} aggregate left the tied minimum-diameter set (trial {trial})"


@pytest.mark.parametrize("rule_name", TRANSLATION_EQUIVARIANT_RULES)
def test_translation_equivariance(rule_name):
    for trial in range(TRIALS):
        vectors = random_stack(200 + trial)
        shift = np.random.default_rng(700 + trial).normal(0.0, 10.0, size=vectors.shape[1])
        rule = make_rule(rule_name, n=N, t=T)
        base = rule.aggregate(vectors)
        shifted = rule.aggregate(vectors + shift[None, :])
        np.testing.assert_allclose(
            shifted, base + shift, rtol=1e-6, atol=1e-7,
            err_msg=f"{rule_name} is not translation equivariant (trial {trial})",
        )


@pytest.mark.parametrize("rule_name", DISTANCE_RULES)
def test_shared_context_matches_uncached_bitwise(rule_name):
    for trial in range(TRIALS):
        vectors = random_stack(300 + trial)
        rule = make_rule(rule_name, n=N, t=T)
        uncached = rule.aggregate(vectors)
        cached = rule.aggregate(context=AggregationContext(vectors))
        assert np.array_equal(uncached, cached), (
            f"{rule_name} differs under a shared context (trial {trial})"
        )


def test_one_context_shared_across_rules_is_bitwise_equal():
    """One context serving Krum, Multi-Krum, medoid and the MD rules."""
    for trial in range(TRIALS):
        vectors = random_stack(400 + trial)
        rules = {name: make_rule(name, n=N, t=T) for name in DISTANCE_RULES}
        expected = {name: rule.aggregate(vectors) for name, rule in rules.items()}
        shared = aggregate_all(rules, vectors)
        assert set(shared) == set(expected)
        for name in rules:
            assert np.array_equal(shared[name], expected[name]), (
                f"{name} differs when the context is shared across rules (trial {trial})"
            )


def test_shared_context_computes_distances_once():
    vectors = random_stack(42)
    rules = {name: make_rule(name, n=N, t=T) for name in DISTANCE_RULES}
    reset_cache_stats()
    try:
        aggregate_all(rules, vectors)
        stats = cache_stats()
        assert stats["misses"] == 1  # one GEMM for the whole round
        # Every other rule is served from a shared cache: either the
        # distance matrices directly, or (for the subset-quantified MD
        # rules) the per-round subset artifacts derived from them.
        assert stats["hits"] + stats["subset_hits"] >= len(rules) - 1
    finally:
        reset_cache_stats()


def test_context_distance_matrices_match_linalg_bitwise():
    from repro.linalg.distances import pairwise_distances, pairwise_sq_distances

    vectors = random_stack(7)
    context = AggregationContext(vectors)
    assert np.array_equal(context.sq_distances, pairwise_sq_distances(vectors))
    assert np.array_equal(context.distances, pairwise_distances(vectors))
    # Memoised: the same array objects are returned on re-access.
    assert context.sq_distances is context.sq_distances
    assert context.distances is context.distances
