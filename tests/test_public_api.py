"""Tests for the public API surface (repro, repro.core re-exports)."""

import importlib

import numpy as np
import pytest

import repro
import repro.core as core


class TestTopLevel:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_subpackages_importable(self):
        for name in (
            "repro.linalg", "repro.aggregation", "repro.agreement", "repro.byzantine",
            "repro.network", "repro.data", "repro.nn", "repro.learning", "repro.theory",
            "repro.analysis", "repro.io", "repro.utils", "repro.core", "repro.cli",
            "repro.sweep",
        ):
            module = importlib.import_module(name)
            assert module is not None

    def test_subpackage_all_exports_exist(self):
        for name in (
            "repro.linalg", "repro.aggregation", "repro.agreement", "repro.byzantine",
            "repro.network", "repro.data", "repro.nn", "repro.learning", "repro.theory",
            "repro.analysis", "repro.io", "repro.utils", "repro.sweep",
        ):
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol} missing"


class TestCoreReExports:
    def test_core_exports_exist(self):
        for symbol in core.__all__:
            assert hasattr(core, symbol)

    def test_core_quickstart_flow(self):
        rng = np.random.default_rng(0)
        n, t, d = 7, 1, 4
        honest = rng.normal(size=(n - t, d))
        received = np.vstack([honest, np.full((t, d), 25.0)])
        rule = core.HyperboxGeometricMedian(n=n, t=t)
        aggregate = rule.aggregate(received)
        ratio = core.approximation_ratio(aggregate, honest, received, n, t)
        assert ratio <= 2.0 * np.sqrt(d) + 1e-9

    def test_core_agreement_flow(self):
        rng = np.random.default_rng(1)
        algorithm = core.HyperboxGeometricMedianAgreement(7, 1)
        protocol = core.AgreementProtocol(algorithm, byzantine=(6,), attack=None)
        result = protocol.run(rng.normal(size=(6, 3)), rounds=3)
        assert isinstance(result, core.AgreementResult)
        assert result.converged(1e-9)

    def test_core_geometry_exports(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        med = core.geometric_median(pts)
        box = core.bounding_hyperbox(pts)
        assert box.contains(med)
        trimmed = core.trimmed_hyperbox(np.vstack([pts, [[100.0, 100.0]]]), 1)
        assert box.contains_box(trimmed)

    def test_sgeo_helpers(self):
        rng = np.random.default_rng(2)
        received = rng.normal(size=(8, 3))
        candidates = core.geometric_median_candidates(received, n=8, t=1)
        ball = core.covering_ball_of_sgeo(received, n=8, t=1)
        assert ball.contains_all(candidates)
        mu = core.true_geometric_median(received)
        assert ball.contains(mu, rtol=1e-6, atol=1e-6)
