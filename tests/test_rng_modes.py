"""Statistical validation of ``rng_mode="vectorized"``.

The scalar mode is pinned *bitwise* by the equivalence fixtures in
``tests/test_message_plane.py`` / ``tests/test_engine_equivalence.py``;
the vectorized mode changes the draw order (one Bernoulli vector + one
lag vector per round for the partial scheduler, a SIMD Pareto transform
for the asynchronous one), so it is pinned *statistically* here instead:

1. the exact per-node conservation identities hold in both modes and on
   both message planes (``sent == delivered + expired_at_reset +
   pending``, aggregate and per receiver);
2. the realized lag distributions agree between modes at matched
   parameters (hand-rolled two-sample Kolmogorov–Smirnov test — the
   test environment has no scipy);
3. end-to-end classification outcomes of a small paired sweep grid
   agree across modes;
4. (regression, scalar mode) turning on ``node_trace``, an explicit
   complete topology, or either message plane never shifts the scalar
   RNG stream, for all four schedulers.

Everything here is deterministic: fixed seeds make the KS statistics
reproducible, so the alpha below is a design margin, not a flake rate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine import RNG_MODES, make_scheduler, resolve_rng_mode
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.network.delivery import full_broadcast_plan
from repro.network.reliable_broadcast import BroadcastPlan
from repro.network.topology import make_topology

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def ks_distance(a, b) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup-norm CDF distance)."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / a.size
    cdf_b = np.searchsorted(b, values, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_threshold(n: int, m: int, alpha: float = 1e-3) -> float:
    """Critical KS distance at level ``alpha`` (asymptotic two-sample form)."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


def _drive(engine, n: int, rounds: int, *, start: int = 0, payload_seed: int = 3):
    """Submit ``rounds`` full-broadcast rounds of random payloads."""
    rng = np.random.default_rng(payload_seed)
    for round_index in range(start, start + rounds):
        plans = [full_broadcast_plan(node, rng.random(4)) for node in range(n)]
        engine.submit(plans, round_index)


PARTIAL_KW = dict(delay=3, delay_prob=0.4, seed=11)
ASYNC_KW = dict(wait_timeout=2.0, burstiness=0.3, seed=11)


def _make(scheduler: str, mode: str, n: int, plane: str = "batch", **extra):
    kwargs = dict(PARTIAL_KW if scheduler == "partial" else ASYNC_KW)
    kwargs.update(extra)
    engine = make_scheduler(
        scheduler, n, keep_history=False, rng_mode=mode,
        message_plane=plane, **kwargs,
    )
    if scheduler == "asynchronous":
        engine.wait_for(count=n - 2)
    return engine


# ---------------------------------------------------------------------------
# 1. conservation identities, both modes x both planes
# ---------------------------------------------------------------------------

CASES = [
    ("scalar", "object"),
    ("scalar", "batch"),
    ("vectorized", "batch"),
]


@pytest.mark.parametrize("scheduler", ["partial", "asynchronous"])
@pytest.mark.parametrize("mode,plane", CASES)
class TestConservation:
    def test_aggregate_identity_across_reset(self, scheduler, mode, plane):
        n = 10
        engine = _make(scheduler, mode, n, plane)
        _drive(engine, n, rounds=6)
        engine.reset()  # expires the in-flight tail
        _drive(engine, n, rounds=6, start=6)
        stats = engine.stats_snapshot()
        assert stats["sent"] == (
            stats["delivered"] + stats["expired_at_reset"] + engine.pending_count()
        )
        assert stats["dropped"] == 0  # these models never lose a message

    def test_per_node_identity(self, scheduler, mode, plane):
        if plane != "batch":
            pytest.skip("per-node counters are a batch-plane feature")
        n = 10
        engine = _make(scheduler, mode, n, plane, node_trace=True)
        _drive(engine, n, rounds=5)
        engine.reset()
        _drive(engine, n, rounds=5, start=5)
        node = engine.node_stats
        zeros = np.zeros(n, dtype=np.int64)
        sent = node.get("sent", zeros)
        delivered = node.get("delivered", zeros)
        expired = node.get("expired_at_reset", zeros)
        pending = engine.pending_count_per_node()
        np.testing.assert_array_equal(sent, delivered + expired + pending)
        # Per-node columns sum to the aggregate counters.
        assert int(sent.sum()) == engine.stats["sent"]
        assert int(delivered.sum()) == engine.stats["delivered"]


# ---------------------------------------------------------------------------
# 2. distributional agreement between modes (KS)
# ---------------------------------------------------------------------------


def _partial_lag_sample(mode: str, *, n=24, rounds=40, max_delay=6,
                        delay_prob=0.35, seed=123) -> np.ndarray:
    """Realized per-link lags (0 = immediate) for every drawn link."""
    engine = make_scheduler(
        "partial", n, delay=max_delay, delay_prob=delay_prob, seed=seed,
        keep_history=False, rng_mode=mode,
    )
    rng = np.random.default_rng(7)
    lags = []
    for round_index in range(rounds):
        plans = [full_broadcast_plan(node, rng.random(3)) for node in range(n)]
        engine.submit(plans, round_index)
        delayed_now = 0
        for arrival, groups in engine._pending_batches.items():
            for send_round, _batch, rows, _recvs in groups:
                if send_round == round_index:
                    count = int(rows.shape[0])
                    delayed_now += count
                    lags.extend([arrival - round_index] * count)
        # The remaining drawn links (all but self-delivery) were immediate.
        lags.extend([0] * (n * (n - 1) - delayed_now))
    return np.asarray(lags, dtype=np.float64)


def _async_lag_sample(mode: str, *, n=24, rounds=30, seed=123) -> np.ndarray:
    """Realized Pareto link delays, censored identically in both modes.

    A near-zero wait window keeps almost every non-self link in flight,
    so the in-flight store right after a submit holds that round's drawn
    delays (minus the identically-censored near-zero tail).
    """
    engine = make_scheduler(
        "asynchronous", n, wait_timeout=1e-6, seed=seed,
        keep_history=False, rng_mode=mode,
    )
    engine.wait_for(count=0)  # no message target: the timeout decides
    rng = np.random.default_rng(7)
    lags = []
    for round_index in range(rounds):
        plans = [full_broadcast_plan(node, rng.random(3)) for node in range(n)]
        engine.submit(plans, round_index)
        arrival, send_round = engine._pending_links[0], engine._pending_links[1]
        fresh = send_round == round_index
        lags.append(arrival[fresh] - float(round_index))
    return np.concatenate(lags)


class TestDistributions:
    def test_partial_lag_distribution_matches_scalar(self):
        scalar = _partial_lag_sample("scalar")
        vector = _partial_lag_sample("vectorized")
        assert scalar.size == vector.size  # same number of drawn links
        distance = ks_distance(scalar, vector)
        assert distance < ks_threshold(scalar.size, vector.size), (
            f"partial lag KS distance {distance:.4f} exceeds the "
            f"alpha=1e-3 threshold"
        )
        # Both modes draw slow lags uniformly on [1, max_delay]: every
        # lag value must actually occur in both samples.
        assert set(np.unique(scalar)) == set(np.unique(vector))

    def test_partial_delay_fraction_matches_scalar(self):
        scalar = _partial_lag_sample("scalar")
        vector = _partial_lag_sample("vectorized")
        p_scalar = float(np.mean(scalar > 0))
        p_vector = float(np.mean(vector > 0))
        # Two-proportion comparison at matched sample sizes: the gap
        # must be within a few standard errors of the pooled Bernoulli.
        pooled = 0.5 * (p_scalar + p_vector)
        sigma = math.sqrt(2.0 * pooled * (1.0 - pooled) / scalar.size)
        assert abs(p_scalar - p_vector) < 4.0 * sigma

    def test_async_lag_distribution_matches_scalar(self):
        scalar = _async_lag_sample("scalar")
        vector = _async_lag_sample("vectorized")
        assert scalar.size == vector.size
        distance = ks_distance(scalar, vector)
        assert distance < ks_threshold(scalar.size, vector.size)
        # Same uniforms, same transform up to SIMD-vs-scalar pow ulps:
        # the two samples are elementwise close, not just distributed
        # alike (the draw count and order are part of the contract —
        # common random numbers across modes).  The ulp gap amplifies
        # through the power transform near zero, hence 1e-9 not 1e-15.
        np.testing.assert_allclose(np.sort(scalar), np.sort(vector), rtol=1e-9)

    def test_vectorized_respects_pinned_delays(self):
        """Adversary-pinned lags survive the vectorized scatter exactly."""
        n = 6
        engine = make_scheduler(
            "partial", n, (0,), delay=5, delay_prob=0.9, seed=1,
            keep_history=False, rng_mode="vectorized",
        )
        rng = np.random.default_rng(0)
        plans = [
            BroadcastPlan(sender=0, payload=rng.random(3), delays={1: 3, 2: 7})
        ] + [full_broadcast_plan(node, rng.random(3)) for node in range(1, n)]
        engine.submit(plans, 0)
        pinned = {}
        for arrival, groups in engine._pending_batches.items():
            for _send_round, batch, rows, recvs in groups:
                for row, recv in zip(rows.tolist(), recvs.tolist()):
                    if int(batch.senders[row]) == 0 and recv in (1, 2):
                        pinned[recv] = arrival
        # delays={1: 3} arrives exactly 3 rounds later; {2: 7} is capped
        # at the delivery horizon (max_delay=5), exactly as in scalar
        # mode; self-delivery (0 -> 0) is immediate, never pending.
        assert pinned == {1: 3, 2: 5}


# ---------------------------------------------------------------------------
# 3. end-to-end outcomes agree across modes (paired small sweep grid)
# ---------------------------------------------------------------------------


def _tiny_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="decentralized",
        aggregation="box-geom",
        num_clients=6,
        num_byzantine=1,
        rounds=3,
        num_samples=60,
        batch_size=8,
        mlp_hidden=(8, 4),
        seed=5,
    )
    return base.with_overrides(**overrides)


@pytest.mark.parametrize(
    "scheduler_kw",
    [
        dict(scheduler="partial", delay=2),
        dict(scheduler="asynchronous", wait_timeout=2.0, burstiness=0.2),
    ],
    ids=["partial", "asynchronous"],
)
def test_classification_outcomes_match_across_modes(scheduler_kw):
    from repro.analysis.traces import classify_trace

    outcomes = {}
    for mode in RNG_MODES:
        config = _tiny_config(rng_mode=mode, **scheduler_kw)
        history = run_experiment(config)
        accuracies = list(history.accuracies())
        outcomes[mode] = classify_trace(accuracies)
        # Either mode trains to a sane accuracy trace.
        assert all(0.0 <= acc <= 1.0 for acc in accuracies)
    assert outcomes["scalar"] == outcomes["vectorized"], outcomes


# ---------------------------------------------------------------------------
# 4. scalar-mode RNG stream isolation (regression, all four schedulers)
# ---------------------------------------------------------------------------

SCHEDULER_SETUPS = {
    "synchronous": {},
    "partial": {"delay": 2, "seed": 11},
    "lossy": {"drop_rate": 0.2, "crash_schedule": ((1, 1, 3),), "seed": 11},
    "asynchronous": {"wait_timeout": 2.0, "burstiness": 0.4, "seed": 11},
}

VARIANTS = {
    "baseline": {},
    "node_trace": {"node_trace": True},
    "object_plane": {"message_plane": "object"},
    "complete_topology": {"topology": "complete"},
}


def _run_variant(scheduler: str, variant: str, *, n: int = 7, rounds: int = 5):
    kwargs = dict(SCHEDULER_SETUPS[scheduler])
    extra = dict(VARIANTS[variant])
    if extra.pop("topology", None):
        extra["topology"] = make_topology("complete", n)
    if scheduler == "synchronous" and extra.get("node_trace"):
        # The synchronous scheduler records no stats; per-node tracing
        # is meaningless there (config-level validation rejects it).
        extra.pop("node_trace")
    engine = make_scheduler(
        scheduler, n, (n - 1,), keep_history=False, **kwargs, **extra
    )
    if scheduler == "asynchronous":
        engine.wait_for(count=n - 2)
    rng = np.random.default_rng(3)
    state = []
    for round_index in range(rounds):
        plans = [full_broadcast_plan(node, rng.random(4)) for node in range(n)]
        result = engine.submit(plans, round_index)
        for node in range(n):
            inbox = result.inboxes.get(node, [])
            if len(inbox):
                state.append((node, result.received_matrix(node).tobytes(),
                              tuple(result.senders(node))))
            else:
                state.append((node, b"", ()))
    return state, engine.stats_snapshot(), engine.trace_snapshot()


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_SETUPS))
def test_scalar_stream_isolation(scheduler):
    """node_trace / complete topology / plane switch never shift the stream.

    The scalar RNG streams are a bitwise contract: observability knobs
    and delivery-representation switches must be invisible to them, or
    paired-seed comparisons (and the pinned fixtures) silently break.
    """
    baseline = _run_variant(scheduler, "baseline")
    for variant in ("node_trace", "object_plane", "complete_topology"):
        assert _run_variant(scheduler, variant) == baseline, (
            f"{variant} shifted the {scheduler} scalar RNG stream"
        )


# ---------------------------------------------------------------------------
# 5. plumbing: resolution, validation, config/sweep/CLI surfaces
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_mode_registry_and_resolution(self, monkeypatch):
        assert RNG_MODES == ("scalar", "vectorized")
        monkeypatch.delenv("REPRO_RNG_MODE", raising=False)
        assert resolve_rng_mode(None) == "scalar"
        assert resolve_rng_mode("VECTORIZED") == "vectorized"
        with pytest.raises(ValueError, match="unknown rng_mode"):
            resolve_rng_mode("simd")
        monkeypatch.setenv("REPRO_RNG_MODE", "vectorized")
        engine = make_scheduler("partial", 4, delay=1)
        assert engine.rng_mode == "vectorized"
        monkeypatch.delenv("REPRO_RNG_MODE")
        assert make_scheduler("partial", 4, delay=1).rng_mode == "scalar"

    def test_deterministic_schedulers_reject_vectorized(self):
        with pytest.raises(ValueError, match="only meaningful"):
            make_scheduler("synchronous", 4, rng_mode="vectorized")
        with pytest.raises(ValueError, match="only meaningful"):
            make_scheduler("lossy", 4, drop_rate=0.1, rng_mode="vectorized")
        # The deterministic schedulers report the trivial scalar mode.
        assert make_scheduler("synchronous", 4).rng_mode == "scalar"

    def test_vectorized_requires_batch_plane(self):
        with pytest.raises(ValueError, match="batch message plane"):
            make_scheduler(
                "partial", 4, delay=1, rng_mode="vectorized",
                message_plane="object",
            )
        with pytest.raises(ValueError, match="batch message plane"):
            make_scheduler(
                "asynchronous", 4, wait_timeout=1.0, rng_mode="vectorized",
                message_plane="object",
            )

    def test_config_validation_and_engine_threading(self):
        from repro.learning.experiment import _make_engine

        config = _tiny_config(scheduler="partial", delay=2,
                              rng_mode="vectorized")
        engine = _make_engine(config, config.num_clients, ())
        assert engine.rng_mode == "vectorized"
        with pytest.raises(ValueError, match="rng_mode"):
            _tiny_config(rng_mode="vectorized")  # synchronous scheduler
        with pytest.raises(ValueError, match="unknown rng_mode"):
            _tiny_config(rng_mode="simd")

    def test_config_dict_elides_scalar_mode(self):
        from repro.sweep.grid import CONFIG_FIELDS, config_from_dict, config_to_dict

        assert "rng_mode" in CONFIG_FIELDS  # a valid sweep axis
        scalar = _tiny_config(scheduler="partial", delay=2)
        data = config_to_dict(scalar)
        assert "rng_mode" not in data  # byte-identical to pre-axis rows
        assert config_from_dict(data).rng_mode == "scalar"
        vector = config_to_dict(scalar.with_overrides(rng_mode="vectorized"))
        assert vector["rng_mode"] == "vectorized"
        assert config_from_dict(vector).rng_mode == "vectorized"

    def test_rng_mode_is_a_sweep_axis(self):
        from repro.sweep.grid import ScenarioGrid

        grid = ScenarioGrid(
            base=_tiny_config(scheduler="partial", delay=2),
            axes={"rng_mode": ["scalar", "vectorized"]},
            derive_seeds=False,  # paired: only the draw strategy varies
        )
        cells = list(grid.validate())
        assert [cell.config.rng_mode for cell in cells] == [
            "scalar", "vectorized",
        ]
        assert [cell.axes["rng_mode"] for cell in cells] == [
            "scalar", "vectorized",
        ]

    def test_cli_flag_threads_into_config(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "--scheduler", "partial", "--delay", "2",
             "--rng-mode", "vectorized", "--setting", "decentralized"]
        )
        assert args.rng_mode == "vectorized"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--rng-mode", "simd"])
