"""Tests for the scenario-sweep engine (repro.sweep) and JSONL io."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.io.jsonl import (
    append_jsonl,
    dump_row,
    read_jsonl,
    truncate_partial_tail,
    write_jsonl,
)
from repro.learning.experiment import ExperimentConfig
from repro.sweep import (
    ROW_SCHEMA_VERSION,
    ScenarioGrid,
    SweepRunner,
    config_from_dict,
    config_to_dict,
    rows_to_histories,
)


def tiny_config(**overrides) -> ExperimentConfig:
    """Smallest config that still exercises the full experiment path."""
    base = ExperimentConfig(
        num_clients=4,
        num_byzantine=1,
        rounds=2,
        num_samples=40,
        batch_size=8,
        learning_rate=0.05,
        mlp_hidden=(8, 4),
        seed=5,
    )
    return base.with_overrides(**overrides)


def tiny_grid() -> ScenarioGrid:
    return ScenarioGrid(
        tiny_config(),
        {"heterogeneity": ["uniform", "extreme"], "aggregation": ["mean", "krum"]},
    )


class TestJsonl:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "rows" / "out.jsonl"
        append_jsonl(path, {"b": 2, "a": 1})
        append_jsonl(path, {"c": [1, 2]})
        assert read_jsonl(path) == [{"a": 1, "b": 2}, {"c": [1, 2]}]
        # Sorted keys make the bytes deterministic.
        assert path.read_text().splitlines()[0] == '{"a": 1, "b": 2}'

    def test_write_jsonl_overwrites(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(path, [{"a": 1}])
        write_jsonl(path, [{"b": 2}])
        assert read_jsonl(path) == [{"b": 2}]

    def test_partial_tail_skipped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')  # interrupted final write
        assert read_jsonl(path) == [{"a": 1}]

    def test_parseable_unterminated_tail_also_skipped(self, tmp_path):
        # A prefix of a longer row can itself be valid JSON; without a
        # terminating newline it is still an interrupted write.
        path = tmp_path / "out.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}')
        assert read_jsonl(path) == [{"a": 1}]

    def test_truncate_partial_tail(self, tmp_path):
        path = tmp_path / "out.jsonl"
        assert truncate_partial_tail(path) == 0  # missing file
        path.write_text('{"a": 1}\n{"b": 2')
        assert truncate_partial_tail(path) == len('{"b": 2')
        assert path.read_text() == '{"a": 1}\n'
        assert truncate_partial_tail(path) == 0  # already clean
        path.write_text("{partial only")
        truncate_partial_tail(path)
        assert path.read_text() == ""

    def test_invalid_middle_line_raises(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_non_object_row_rejected(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("[1, 2]\n{}\n")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_non_finite_floats_become_null(self, tmp_path):
        path = tmp_path / "out.jsonl"
        append_jsonl(path, {"loss": float("nan"), "ratio": float("inf"), "ok": 1.5})
        line = path.read_text().strip()
        assert "NaN" not in line and "Infinity" not in line
        assert read_jsonl(path) == [{"loss": None, "ratio": None, "ok": 1.5}]

    def test_nan_metrics_round_trip_through_history(self):
        from repro.io.results import history_from_dict, history_to_dict
        from repro.learning.history import RoundRecord, TrainingHistory

        history = TrainingHistory(
            setting="centralized", aggregation="mean", attack="magnitude",
            heterogeneity="mild", num_clients=4, num_byzantine=1,
        )
        history.append(RoundRecord(round_index=0, accuracy=0.1, loss=float("nan")))
        payload = json.loads(dump_row(history_to_dict(history)))
        restored = history_from_dict(payload)
        assert np.isnan(restored.records[0].loss)
        assert restored.records[0].accuracy == 0.1


class TestConfigSerialization:
    def test_round_trip(self):
        config = tiny_config(attack=None, aggregation_kwargs={"max_subsets": 5})
        data = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(data) == config
        assert isinstance(config_from_dict(data).mlp_hidden, tuple)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentConfig fields"):
            config_from_dict({"not_a_field": 1})


class TestScenarioGrid:
    def test_expansion_size_order_and_ids(self):
        grid = tiny_grid()
        cells = grid.cells()
        assert len(grid) == len(cells) == 4
        assert [c.cell_id for c in cells] == [
            "heterogeneity=uniform/aggregation=mean",
            "heterogeneity=uniform/aggregation=krum",
            "heterogeneity=extreme/aggregation=mean",
            "heterogeneity=extreme/aggregation=krum",
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]
        for cell in cells:
            assert cell.config.heterogeneity == cell.axes["heterogeneity"]
            assert cell.config.aggregation == cell.axes["aggregation"]

    def test_per_cell_seeds_distinct_and_stable(self):
        first = tiny_grid().cells()
        second = tiny_grid().cells()
        seeds = [c.config.seed for c in first]
        assert len(set(seeds)) == len(seeds)  # decorrelated cells
        assert seeds == [c.config.seed for c in second]  # reproducible
        assert all(c.config.seed != tiny_config().seed for c in first)

    def test_seed_axis_wins_over_derivation(self):
        grid = ScenarioGrid(tiny_config(), {"seed": [1, 2]})
        assert [c.config.seed for c in grid.cells()] == [1, 2]

    def test_derive_seeds_off_keeps_base_seed_for_paired_comparisons(self):
        grid = ScenarioGrid(
            tiny_config(), {"aggregation": ["mean", "krum"]}, derive_seeds=False
        )
        assert [c.config.seed for c in grid.cells()] == [5, 5]
        spec = json.loads(json.dumps(grid.to_spec()))
        assert spec["derive_seeds"] is False
        restored = ScenarioGrid.from_spec(spec)
        assert restored.derive_seeds is False
        assert [c.config.seed for c in restored.cells()] == [5, 5]
        # Default specs stay minimal and keep deriving.
        assert "derive_seeds" not in tiny_grid().to_spec()

    def test_attack_none_axis_value(self):
        grid = ScenarioGrid(tiny_config(), {"attack": [None, "sign-flip"]})
        cells = grid.cells()
        assert cells[0].cell_id == "attack=none"
        assert cells[0].config.attack is None

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="unknown axis"):
            ScenarioGrid(tiny_config(), {"not_a_field": [1]})
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid(tiny_config(), {"aggregation": []})
        with pytest.raises(ValueError, match="must be a sequence"):
            ScenarioGrid(tiny_config(), {"aggregation": "mean"})
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioGrid(tiny_config(), {"aggregation": ["mean", "mean"]})
        with pytest.raises(ValueError, match="at least one axis"):
            ScenarioGrid(tiny_config(), {})
        with pytest.raises(ValueError, match="must be a sequence"):
            ScenarioGrid(tiny_config(), {"rounds": 5})

    def test_scalar_mlp_hidden_rejected(self):
        with pytest.raises(ValueError, match="mlp_hidden"):
            config_from_dict({"mlp_hidden": 8})

    def test_validate_catches_unknown_names_early(self):
        grid = ScenarioGrid(tiny_config(), {"aggregation": ["mean", "bogus-rule"]})
        with pytest.raises(ValueError, match="unknown centralized aggregation 'bogus-rule'"):
            grid.validate()
        grid = ScenarioGrid(tiny_config(), {"attack": ["sign-flip", "bogus-attack"]})
        with pytest.raises(ValueError, match="unknown attack 'bogus-attack'"):
            grid.validate()
        assert len(tiny_grid().validate()) == 4

    def test_validate_catches_invalid_cell_config(self):
        # Valid field name, invalid value: caught at expansion time.
        grid = ScenarioGrid(tiny_config(), {"num_byzantine": [1, 5]})
        with pytest.raises(ValueError, match="num_byzantine"):
            grid.validate()

    def test_spec_round_trip(self):
        grid = tiny_grid()
        spec = json.loads(json.dumps(grid.to_spec()))
        restored = ScenarioGrid.from_spec(spec)
        assert restored.axes == grid.axes
        assert [c.cell_id for c in restored.cells()] == [c.cell_id for c in grid.cells()]
        assert [c.config for c in restored.cells()] == [c.config for c in grid.cells()]

    def test_from_spec_defaults_and_errors(self):
        grid = ScenarioGrid.from_spec({"axes": {"heterogeneity": ["uniform"]}})
        assert grid.base == ExperimentConfig()
        with pytest.raises(ValueError, match="axes"):
            ScenarioGrid.from_spec({"base": {}})
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            ScenarioGrid.from_spec({"axes": {"seed": [1]}, "extra": 1})


class TestSweepRunner:
    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(tiny_grid(), workers=0)

    @pytest.mark.slow
    def test_same_spec_gives_identical_jsonl(self, tmp_path):
        grid = tiny_grid()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        rows1 = SweepRunner(grid, output_path=first).run()
        rows2 = SweepRunner(grid, output_path=second).run()
        assert first.read_bytes() == second.read_bytes()
        assert rows1 == rows2
        assert all(row["schema"] == ROW_SCHEMA_VERSION for row in rows1)
        histories = rows_to_histories(rows1)
        assert set(histories) == {c.cell_id for c in grid.cells()}
        assert all(h.rounds == 2 for h in histories.values())

    @pytest.mark.slow
    def test_resume_skips_completed_cells(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        baseline = SweepRunner(grid, output_path=path).run()
        original = path.read_bytes()

        # Drop the last row, as an interrupt would.
        lines = original.decode().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")

        executed = []
        runner = SweepRunner(
            grid,
            output_path=path,
            on_cell=lambda cell, row, reused: executed.append((cell.cell_id, reused)),
        )
        assert len(runner.completed_rows()) == len(grid) - 1
        resumed = runner.run()
        assert path.read_bytes() == original
        assert resumed == baseline
        # Exactly one cell re-ran; every other one was reused, and the
        # progress callbacks fired in grid order (cached interleaved).
        fresh = [cell_id for cell_id, reused in executed if not reused]
        assert fresh == [grid.cells()[-1].cell_id]
        assert [cell_id for cell_id, _ in executed] == [
            c.cell_id for c in grid.cells()
        ]

    @pytest.mark.slow
    def test_resume_after_partial_final_line(self, tmp_path):
        """An interrupted write (partial line, no newline) must not glue
        the re-run row onto the partial bytes."""
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        SweepRunner(grid, output_path=path).run()
        original = path.read_bytes()

        # Cut the final row mid-line, as a mid-write interrupt would.
        path.write_bytes(original[:-40])
        resumed = SweepRunner(grid, output_path=path).run()
        assert path.read_bytes() == original
        assert [row["cell_id"] for row in resumed] == [
            c.cell_id for c in grid.cells()
        ]
        # And the repaired file keeps resuming cleanly.
        assert len(SweepRunner(grid, output_path=path).completed_rows()) == len(grid)

    @pytest.mark.slow
    def test_stale_row_with_changed_config_reruns(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        baseline = SweepRunner(grid, output_path=path).run()

        # Rewrite the first row as if it came from a different spec.
        rows = read_jsonl(path)
        rows[0]["config"]["rounds"] = 99
        write_jsonl(path, rows)
        runner = SweepRunner(grid, output_path=path)
        assert len(runner.completed_rows()) == len(grid) - 1
        assert runner.run() == baseline

    @pytest.mark.slow
    def test_no_resume_restarts_stream_without_duplicates(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        SweepRunner(grid, output_path=path).run()
        first = path.read_bytes()
        runner = SweepRunner(grid, output_path=path, resume=False)
        assert runner.completed_rows() == {}
        runner.run()
        # The file is rewritten, not appended: same rows, no duplicates.
        assert path.read_bytes() == first
        assert len(read_jsonl(path)) == len(grid)

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        grid = tiny_grid()
        serial, parallel = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        rows1 = SweepRunner(grid, workers=1, output_path=serial).run()
        rows2 = SweepRunner(grid, workers=2, output_path=parallel).run()
        assert serial.read_bytes() == parallel.read_bytes()
        assert rows1 == rows2

    @pytest.mark.slow
    def test_three_axis_sweep_parallel_and_resume(self, tmp_path):
        """Acceptance: 2 heterogeneity x 2 attacks x 2 rules, workers=2."""
        grid = ScenarioGrid(
            tiny_config(rounds=1),
            {
                "heterogeneity": ["uniform", "extreme"],
                "attack": ["sign-flip", "crash"],
                "aggregation": ["krum", "box-mean"],
            },
        )
        assert len(grid) == 8
        serial, parallel = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        rows1 = SweepRunner(grid, workers=1, output_path=serial).run()
        rows2 = SweepRunner(grid, workers=2, output_path=parallel).run()
        assert rows1 == rows2
        assert serial.read_bytes() == parallel.read_bytes()

        # Resume correctly after deleting the last row.
        original = parallel.read_bytes()
        lines = original.decode().splitlines()
        parallel.write_text("\n".join(lines[:-1]) + "\n")
        resumed = SweepRunner(grid, workers=2, output_path=parallel).run()
        assert resumed == rows1
        assert parallel.read_bytes() == original


class TestResumeEdgeCases:
    """Resume bookkeeping against adversarial on-disk states."""

    def _fabricated_rows(self, grid):
        """Plausible completed rows without running any experiment."""
        return [
            {
                "schema": ROW_SCHEMA_VERSION,
                "index": cell.index,
                "cell_id": cell.cell_id,
                "axes": cell.axes,
                "config": config_to_dict(cell.config),
                "summary": {"final_accuracy": 0.5, "best_accuracy": 0.5,
                            "final_loss": 1.0, "rounds": 2},
                "history": {},
            }
            for cell in grid.cells()
        ]

    def test_valid_json_partial_tail_not_trusted(self, tmp_path):
        # A partial final line whose prefix happens to parse as complete
        # JSON is still an interrupted write: its cell must re-run.
        grid = tiny_grid()
        rows = self._fabricated_rows(grid)
        path = tmp_path / "sweep.jsonl"
        write_jsonl(path, rows[:-1])
        # The tail is a byte-complete row -- but unterminated.
        with path.open("a") as handle:
            handle.write(json.dumps(rows[-1]))
        completed = SweepRunner(grid, output_path=path).completed_rows()
        assert set(completed) == {row["cell_id"] for row in rows[:-1]}

    def test_stale_schema_version_reruns(self, tmp_path):
        grid = tiny_grid()
        rows = self._fabricated_rows(grid)
        rows[1]["schema"] = ROW_SCHEMA_VERSION - 1  # written by an old code version
        path = tmp_path / "sweep.jsonl"
        write_jsonl(path, rows)
        completed = SweepRunner(grid, output_path=path).completed_rows()
        assert set(completed) == {
            row["cell_id"] for i, row in enumerate(rows) if i != 1
        }

    def test_duplicate_cell_id_fresh_row_wins(self, tmp_path):
        # A stale row (older spec, same cell id) next to a fresh one:
        # the matching row wins regardless of file order.
        grid = tiny_grid()
        rows = self._fabricated_rows(grid)
        stale = json.loads(json.dumps(rows[0]))
        stale["config"]["rounds"] = 99
        stale["summary"]["final_accuracy"] = -1.0
        path = tmp_path / "stale_first.jsonl"
        write_jsonl(path, [stale] + rows)
        completed = SweepRunner(grid, output_path=path).completed_rows()
        assert len(completed) == len(grid)
        assert completed[rows[0]["cell_id"]]["summary"]["final_accuracy"] == 0.5

        path = tmp_path / "stale_last.jsonl"
        write_jsonl(path, rows + [stale])
        completed = SweepRunner(grid, output_path=path).completed_rows()
        assert completed[rows[0]["cell_id"]]["summary"]["final_accuracy"] == 0.5

    def test_duplicate_matching_rows_last_wins(self, tmp_path):
        # Two *matching* rows for one cell (e.g. a resume raced a crash):
        # read-back keeps the later one, mirroring append order.
        grid = tiny_grid()
        rows = self._fabricated_rows(grid)
        rewritten = json.loads(json.dumps(rows[0]))
        rewritten["summary"]["final_accuracy"] = 0.75
        path = tmp_path / "sweep.jsonl"
        write_jsonl(path, rows + [rewritten])
        completed = SweepRunner(grid, output_path=path).completed_rows()
        assert completed[rows[0]["cell_id"]]["summary"]["final_accuracy"] == 0.75

    @pytest.mark.slow
    def test_run_repairs_parseable_partial_tail(self, tmp_path):
        """run() after an interrupt that left a *parseable* partial line:
        the affected cell re-runs and the stream converges byte-for-byte."""
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        baseline = SweepRunner(grid, output_path=path).run()
        original = path.read_bytes()

        # Strip the final newline: the last row is now a parseable but
        # unterminated tail, exactly what a mid-flush interrupt leaves.
        path.write_bytes(original[:-1])
        runner = SweepRunner(grid, output_path=path)
        assert len(runner.completed_rows()) == len(grid) - 1
        resumed = runner.run()
        assert resumed == baseline
        assert path.read_bytes() == original

    @pytest.mark.slow
    def test_run_reruns_stale_schema_rows(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "sweep.jsonl"
        baseline = SweepRunner(grid, output_path=path).run()

        rows = read_jsonl(path)
        rows[0]["schema"] = ROW_SCHEMA_VERSION - 1
        write_jsonl(path, rows)
        runner = SweepRunner(grid, output_path=path)
        assert len(runner.completed_rows()) == len(grid) - 1
        # The re-run appends a fresh (current-schema) row after the
        # stale one; read-back resolves the duplicate fresh-row-wins.
        resumed = runner.run()
        assert resumed == baseline
        assert all(row["schema"] == ROW_SCHEMA_VERSION for row in resumed)
        on_disk = read_jsonl(path)
        assert len(on_disk) == len(grid) + 1  # stale row still on disk
        assert len(SweepRunner(grid, output_path=path).completed_rows()) == len(grid)


class TestSweepReporting:
    def test_summary_table_lists_every_cell(self):
        rows = [
            {
                "index": i,
                "axes": {"heterogeneity": het, "aggregation": rule},
                "summary": {"final_accuracy": 0.5, "best_accuracy": 0.6, "rounds": 2},
            }
            for i, (het, rule) in enumerate(
                [("uniform", "mean"), ("extreme", "krum")]
            )
        ]
        from repro.analysis.reporting import sweep_summary_table

        table = sweep_summary_table(rows)
        assert "heterogeneity" in table and "aggregation" in table
        assert "uniform" in table and "krum" in table
        assert "0.500" in table and "0.600" in table
        assert sweep_summary_table([]) == "(no sweep rows)"


class TestCellIdEscaping:
    """Separator escaping keeps every cell id unambiguous (PR 6 bugfix)."""

    def test_escape_round_trip(self):
        from repro.sweep import escape_axis_value, unescape_axis_value

        for text in ("a/b=c", "1/4", "%2F", "%", "plain", "a%3Db", ""):
            escaped = escape_axis_value(text)
            assert "/" not in escaped and "=" not in escaped
            assert unescape_axis_value(escaped) == text

    def test_plain_values_unchanged(self):
        # Ids without separators are byte-identical to the legacy format
        # (pinned fixtures and merge byte-identity depend on this).
        from repro.sweep import escape_axis_value

        assert escape_axis_value("uniform") == "uniform"
        cells = tiny_grid().cells()
        assert [c.cell_id for c in cells] == [
            "heterogeneity=uniform/aggregation=mean",
            "heterogeneity=uniform/aggregation=krum",
            "heterogeneity=extreme/aggregation=mean",
            "heterogeneity=extreme/aggregation=krum",
        ]

    def test_parse_cell_id_inverts_escaped_ids(self):
        from repro.sweep import parse_cell_id

        grid = ScenarioGrid(
            tiny_config(attack=None, num_byzantine=0),
            {
                "heterogeneity": ["uniform"],
                "attack_kwargs": [{"note": "a/b=c"}, {"note": "x%y"}],
            },
        )
        for cell in grid.cells():
            parsed = parse_cell_id(cell.cell_id)
            assert list(parsed) == ["heterogeneity", "attack_kwargs"]
            assert parsed["attack_kwargs"] == str(cell.axes["attack_kwargs"])

    def test_separator_values_yield_distinct_parseable_ids(self):
        grid = ScenarioGrid(
            tiny_config(attack=None, num_byzantine=0),
            {"attack_kwargs": [{"note": "a/b"}, {"note": "a"}, {"note": "b"}]},
        )
        ids = [c.cell_id for c in grid.cells()]
        assert len(set(ids)) == len(ids)
        # The raw separator never leaks: each id still has exactly one
        # name=value pair per axis.
        for cell_id in ids:
            assert cell_id.count("=") == 1 and cell_id.count("/") == 0

    def test_collision_guard_rejects_identically_rendered_values(self):
        # A list window and a tuple window are distinct axis values
        # (distinct reprs) but render identically in the cell id; seeds,
        # leases and resume key on the id, so expansion must refuse.
        grid = ScenarioGrid(
            tiny_config(scheduler="lossy"),
            {"crash_schedule": [[[1, 0, 3]], [(1, 0, 3)]]},
        )
        with pytest.raises(ValueError, match="collision"):
            grid.cells()

    def test_escaped_ids_survive_run_merge_table(self, tmp_path):
        # Round trip: run a grid whose axis values embed the cell-id
        # separators, merge the stream, and render the summary table
        # with the grid's axis order.
        from repro.analysis.reporting import sweep_summary_table
        from repro.sweep import merge_shards

        grid = ScenarioGrid(
            tiny_config(attack=None, num_byzantine=0, rounds=1),
            {"attack_kwargs": [{"note": "a/b=c"}, {"note": "plain"}]},
        )
        path = tmp_path / "rows.jsonl"
        rows = SweepRunner(grid, output_path=path).run()
        assert [row["cell_id"] for row in rows] == [
            c.cell_id for c in grid.cells()
        ]
        merged = tmp_path / "merged.jsonl"
        merge_shards([path], merged, grid=grid)
        assert merged.read_bytes() == path.read_bytes()
        table = sweep_summary_table(
            read_jsonl(merged), axis_names=grid.axis_names()
        )
        assert "{'note': 'a/b=c'}" in table
        # Recovered order (no axis_names) matches, thanks to the
        # escaped-id fallback parse.
        assert sweep_summary_table(read_jsonl(merged)) == table
