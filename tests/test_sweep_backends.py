"""Tests for the pluggable sweep execution backends (repro.sweep.executors),
shard merging (repro.sweep.merge) and the error-row / resume semantics."""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.learning.experiment import ExperimentConfig
from repro.sweep import (
    ERROR_ROW_SCHEMA_VERSION,
    ROW_SCHEMA_VERSION,
    LeaseStore,
    ProcessPoolBackend,
    ScenarioGrid,
    SerialBackend,
    ShardBackend,
    SweepRunner,
    assign_shard,
    config_to_dict,
    execute_payload,
    failed_rows,
    grid_fingerprint,
    iter_rows_to_histories,
    make_backend,
    merge_shard_rows,
    merge_shards,
    rows_to_histories,
)

FIXTURE = Path(__file__).parent / "fixtures" / "sweep_rows_pre_backends.jsonl"


def tiny_config(**overrides) -> ExperimentConfig:
    """The exact configuration the pinned fixture was generated from."""
    base = ExperimentConfig(
        num_clients=4,
        num_byzantine=1,
        rounds=1,
        num_samples=40,
        batch_size=8,
        learning_rate=0.05,
        mlp_hidden=(8, 4),
        seed=5,
    )
    return base.with_overrides(**overrides)


def tiny_grid() -> ScenarioGrid:
    return ScenarioGrid(
        tiny_config(),
        {"heterogeneity": ["uniform", "extreme"], "aggregation": ["mean", "krum"]},
    )


def fake_run_cell(payload: dict) -> dict:
    """Deterministic stand-in for run_cell: no experiment, same row shape."""
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "axes": payload["axes"],
        "config": payload["config"],
        "summary": {"final_accuracy": 0.5, "best_accuracy": 0.5,
                    "final_loss": 1.0, "rounds": 1},
        "history": {},
    }


@pytest.fixture
def fast_cells(monkeypatch):
    """Patch the cell executor so backend tests run without experiments."""
    monkeypatch.setattr("repro.sweep.executors.run_cell", fake_run_cell)


class TestAssignShard:
    def test_partition_is_deterministic_for_any_shard_count(self):
        cells = tiny_grid().cells()
        for count in range(1, 6):
            first = [assign_shard(c.index, count) for c in cells]
            second = [assign_shard(c.index, count) for c in tiny_grid().cells()]
            assert first == second  # pure function of the grid
            assert set(first) <= set(range(count))

    def test_partition_covers_and_balances(self):
        cells = tiny_grid().cells()
        for count in (1, 2, 3, 4):
            by_shard = {
                i: [c for c in cells if assign_shard(c.index, count) == i]
                for i in range(count)
            }
            merged = sorted(
                (c.index for group in by_shard.values() for c in group)
            )
            assert merged == [c.index for c in cells]  # disjoint cover
            sizes = [len(group) for group in by_shard.values()]
            assert max(sizes) - min(sizes) <= 1  # balanced round-robin

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shard_count"):
            assign_shard(0, 0)


class TestBackendConstruction:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        shard = make_backend("shard", shard_index=1, shard_count=3)
        assert isinstance(shard, ShardBackend) and not shard.exhaustive
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("bogus")

    def test_shard_backend_needs_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one mode"):
            ShardBackend()
        with pytest.raises(ValueError, match="exactly one mode"):
            ShardBackend(shard_index=0, shard_count=2, lease_dir="/tmp/x")
        with pytest.raises(ValueError, match="both shard_index and shard_count"):
            ShardBackend(shard_index=0)
        with pytest.raises(ValueError, match="shard_index must be in"):
            ShardBackend(shard_index=2, shard_count=2)

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBackend(0)
        with pytest.raises(ValueError, match="max_retries"):
            SerialBackend(max_retries=-1)

    def test_runner_backend_defaults(self):
        assert isinstance(SweepRunner(tiny_grid()).backend, SerialBackend)
        assert isinstance(
            SweepRunner(tiny_grid(), workers=2).backend, ProcessPoolBackend
        )
        assert SweepRunner(tiny_grid(), max_retries=3).backend.max_retries == 3


class TestByteIdentityAgainstPinnedFixture:
    """Every backend must reproduce the pinned serial JSONL stream
    exactly.  The fixture was generated at the pre-backend code revision
    and regenerated once when ``ExperimentConfig`` grew the ``dtype``
    field (the only delta: ``"dtype": "float64"`` in each row's config;
    all results byte-identical)."""

    @pytest.mark.slow
    def test_serial_backend_matches_fixture(self, tmp_path):
        out = tmp_path / "serial.jsonl"
        SweepRunner(tiny_grid(), backend=SerialBackend(), output_path=out).run()
        assert out.read_bytes() == FIXTURE.read_bytes()

    @pytest.mark.slow
    def test_process_pool_backend_matches_fixture(self, tmp_path):
        out = tmp_path / "pool.jsonl"
        SweepRunner(
            tiny_grid(), backend=ProcessPoolBackend(2), output_path=out
        ).run()
        assert out.read_bytes() == FIXTURE.read_bytes()

    @pytest.mark.slow
    def test_two_static_shards_merge_to_fixture(self, tmp_path):
        grid = tiny_grid()
        shards = []
        for index in range(2):
            out = tmp_path / f"shard{index}.jsonl"
            backend = ShardBackend(shard_index=index, shard_count=2)
            rows = SweepRunner(grid, backend=backend, output_path=out).run()
            assert all(
                assign_shard(row["index"], 2) == index for row in rows
            )
            shards.append(out)
        merged = tmp_path / "merged.jsonl"
        report = merge_shards(shards, merged, grid=grid)
        assert merged.read_bytes() == FIXTURE.read_bytes()
        assert report.cells == len(grid) and not report.missing


class TestErrorRows:
    """A raising cell emits an error row instead of killing the sweep."""

    def _grid(self):
        return tiny_grid()

    def _failing(self, bad_cell_ids, fail_counts=None):
        """fake_run_cell that raises for the given cells.

        ``fail_counts`` (cell_id -> int) makes a cell fail only its
        first N attempts, to exercise retries.
        """
        remaining = dict(fail_counts or {})

        def run(payload):
            cell_id = payload["cell_id"]
            if cell_id in remaining:
                if remaining[cell_id] > 0:
                    remaining[cell_id] -= 1
                    raise RuntimeError(f"flaky {cell_id}")
                return fake_run_cell(payload)
            if cell_id in bad_cell_ids:
                raise ValueError(f"broken {cell_id}")
            return fake_run_cell(payload)

        return run

    def test_failing_cell_does_not_abort_sweep(self, monkeypatch, tmp_path):
        grid = self._grid()
        bad = grid.cells()[1].cell_id
        monkeypatch.setattr(
            "repro.sweep.executors.run_cell", self._failing({bad})
        )
        out = tmp_path / "rows.jsonl"
        rows = SweepRunner(grid, output_path=out).run()
        assert len(rows) == len(grid)  # every cell produced a row
        failures = failed_rows(rows)
        assert [row["cell_id"] for row in failures] == [bad]
        error = failures[0]["error"]
        assert error["schema"] == ERROR_ROW_SCHEMA_VERSION
        assert error["exception"].startswith("ValueError: broken")
        assert error["attempts"] == 1
        assert any("ValueError" in line for line in error["traceback"])
        # The error row is streamed like any other (valid JSONL).
        on_disk = read_jsonl(out)
        assert sum("error" in row for row in on_disk) == 1

    def test_retries_rescue_flaky_cells(self, monkeypatch):
        grid = self._grid()
        flaky = grid.cells()[0].cell_id
        monkeypatch.setattr(
            "repro.sweep.executors.run_cell",
            self._failing(set(), fail_counts={flaky: 2}),
        )
        rows = SweepRunner(grid, max_retries=2).run()
        assert failed_rows(rows) == []

    def test_retries_exhausted_emit_attempt_count(self, monkeypatch):
        grid = self._grid()
        bad = grid.cells()[0].cell_id
        monkeypatch.setattr(
            "repro.sweep.executors.run_cell", self._failing({bad})
        )
        runner = SweepRunner(grid, max_retries=2)
        rows = runner.run()
        failures = failed_rows(rows)
        assert failures[0]["error"]["attempts"] == 3
        assert runner.backend.stats() == {
            "executed": len(grid), "failed": 1, "skipped": 0,
        }

    def test_error_rows_not_trusted_by_resume(self, monkeypatch, tmp_path):
        grid = self._grid()
        bad = grid.cells()[2].cell_id
        monkeypatch.setattr(
            "repro.sweep.executors.run_cell", self._failing({bad})
        )
        out = tmp_path / "rows.jsonl"
        SweepRunner(grid, output_path=out).run()

        # After the "fix" only the failed cell re-runs.
        monkeypatch.setattr("repro.sweep.executors.run_cell", fake_run_cell)
        executed = []
        runner = SweepRunner(
            grid,
            output_path=out,
            on_cell=lambda cell, row, reused: executed.append(
                (cell.cell_id, reused)
            ),
        )
        assert len(runner.completed_rows()) == len(grid) - 1
        rows = runner.run()
        assert failed_rows(rows) == []
        fresh = [cell_id for cell_id, reused in executed if not reused]
        assert fresh == [bad]
        # Read-back resolves the duplicate (error row still on disk).
        on_disk = read_jsonl(out)
        assert len(on_disk) == len(grid) + 1
        assert len(SweepRunner(grid, output_path=out).completed_rows()) == len(grid)

    def test_execute_payload_never_raises(self):
        payload = {"index": 0, "cell_id": "x", "axes": {}, "config": {"bogus": 1}}
        row = execute_payload(payload)  # config_from_dict raises inside
        assert "error" in row and row["cell_id"] == "x"


class TestLeaseStore:
    def test_two_claimants_one_winner(self, tmp_path):
        a = LeaseStore(tmp_path / "leases", owner="a", timeout=60)
        b = LeaseStore(tmp_path / "leases", owner="b", timeout=60)
        assert a.claim("heterogeneity=mild/aggregation=krum") is True
        assert b.claim("heterogeneity=mild/aggregation=krum") is False
        assert a.lease_owner("heterogeneity=mild/aggregation=krum") == "a"

    def test_fresh_lease_not_reclaimable(self, tmp_path):
        a = LeaseStore(tmp_path / "leases", owner="a", timeout=60)
        b = LeaseStore(tmp_path / "leases", owner="b", timeout=60)
        assert a.claim("cell") and not b.claim("cell")
        assert not b.is_stale("cell")

    def test_stale_lease_reclaimed(self, tmp_path):
        a = LeaseStore(tmp_path / "leases", owner="a", timeout=5)
        b = LeaseStore(tmp_path / "leases", owner="b", timeout=5)
        assert a.claim("cell")
        stale = time.time() - 100
        os.utime(a.lease_path("cell"), (stale, stale))
        assert b.is_stale("cell")
        assert b.claim("cell") is True
        assert b.lease_owner("cell") == "b"

    def test_future_mtime_lease_still_reclaimed_by_observation(self, tmp_path):
        # A skewed writer can stamp lease mtimes in the future, making
        # mtime age negative forever; the local observation clock must
        # still reclaim within ~timeout of first sighting.
        a = LeaseStore(tmp_path / "leases", owner="a", timeout=0.05)
        b = LeaseStore(tmp_path / "leases", owner="b", timeout=0.05)
        assert a.claim("cell")
        future = time.time() + 3600
        os.utime(a.lease_path("cell"), (future, future))
        assert not b.is_stale("cell")  # first sighting starts the clock
        time.sleep(0.1)
        assert b.is_stale("cell")
        assert b.claim("cell") is True

    def test_dead_local_owner_reclaimed_immediately(self, tmp_path):
        # A restarted worker must not sit out the timeout waiting for
        # its own crashed predecessor's lease.
        import multiprocessing
        import socket

        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()  # pid is now provably dead on this host
        dead = LeaseStore(
            tmp_path / "leases",
            owner=f"{socket.gethostname()}:{proc.pid}:0",
            timeout=3600,
        )
        assert dead.claim("cell")
        survivor = LeaseStore(tmp_path / "leases", owner="survivor", timeout=3600)
        assert survivor.claim("cell") is True  # no timeout wait
        assert survivor.lease_owner("cell") == "survivor"

    def test_done_blocks_and_error_done_reclaims_after_age_gate(self, tmp_path):
        a = LeaseStore(tmp_path / "leases", owner="a", timeout=60)
        b = LeaseStore(tmp_path / "leases", owner="b", timeout=60)
        assert a.claim("cell")
        a.mark_done("cell", ok=True)
        assert b.claim("cell") is False  # completed: never re-run
        assert a.claim("other")
        a.mark_done("other", ok=False)  # failed: retryable, but...
        # ...not by peers of the same run — otherwise every live worker
        # would re-run a deterministically broken cell, multiplying
        # max_retries by the fleet size.
        assert b.claim("other") is False
        # A store created *after* the failure (an operator re-running
        # the command post-fix) retries immediately, no timeout wait.
        c = LeaseStore(tmp_path / "leases", owner="c", timeout=60)
        assert c.claim("other") is True
        assert not c.is_done("other")  # retry cleared the marker
        # The aged path also reopens the cell for same-run peers.
        c.mark_done("other", ok=False)
        stale = time.time() - 100
        os.utime(c.done_path("other"), (stale, stale))
        os.utime(c.lease_path("other"), (stale, stale))
        assert b.claim("other") is True

    def test_cell_ids_map_to_safe_distinct_files(self, tmp_path):
        store = LeaseStore(tmp_path / "leases", owner="a", timeout=60)
        ids = ["a/b=1", "a/b=2", "a_b=1", "long/" * 40 + "tail"]
        paths = {store.lease_path(cell_id) for cell_id in ids}
        assert len(paths) == len(ids)  # digest suffix prevents collisions
        for path in paths:
            assert path.parent == store.root  # no nested directories

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="timeout"):
            LeaseStore(tmp_path, owner="a", timeout=0)

    def test_default_owner_ids_distinct_across_threads(self):
        import threading

        from repro.sweep import default_owner_id

        ids = [default_owner_id()]
        thread = threading.Thread(target=lambda: ids.append(default_owner_id()))
        thread.start()
        thread.join()
        # Two same-process lease workers (threads) must never treat
        # each other's live leases as "already ours".
        assert len(set(ids)) == 2


class TestShardExecution:
    def test_static_shards_partition_payloads(self, fast_cells, tmp_path):
        grid = tiny_grid()
        files = []
        for index in range(3):
            out = tmp_path / f"s{index}.jsonl"
            backend = ShardBackend(shard_index=index, shard_count=3)
            rows = SweepRunner(grid, backend=backend, output_path=out).run()
            stats = backend.stats()
            assert stats["executed"] == len(rows)
            assert stats["executed"] + stats["skipped"] == len(grid)
            files.append(out)
        merged, report = merge_shard_rows(files, grid=grid)
        assert [row["cell_id"] for row in merged] == [
            c.cell_id for c in grid.cells()
        ]
        assert report.duplicates == 0

    def test_lease_workers_split_cells_without_overlap(self, fast_cells, tmp_path):
        grid = tiny_grid()
        lease_dir = tmp_path / "leases"
        first = SweepRunner(
            grid,
            backend=ShardBackend(lease_dir=lease_dir, owner="w0", lease_timeout=60),
            output_path=tmp_path / "w0.jsonl",
        ).run()
        second = SweepRunner(
            grid,
            backend=ShardBackend(lease_dir=lease_dir, owner="w1", lease_timeout=60),
            output_path=tmp_path / "w1.jsonl",
        ).run()
        # Sequential workers: the first claims everything, the second
        # sees only done markers — and still leaves a mergeable file.
        assert len(first) == len(grid) and second == []
        assert (tmp_path / "w1.jsonl").exists()
        rows, report = merge_shard_rows(
            [tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"], grid=grid
        )
        assert len(rows) == len(grid) and report.duplicates == 0

    def test_lease_mode_rejects_no_resume(self, fast_cells, tmp_path):
        # A local "re-run everything" cannot be honoured when completion
        # state lives in the shared lease dir: fail loudly, not silently
        # with an empty output file.
        runner = SweepRunner(
            tiny_grid(),
            backend=ShardBackend(lease_dir=tmp_path / "leases", owner="w"),
            output_path=tmp_path / "w.jsonl",
            resume=False,
        )
        with pytest.raises(ValueError, match="lease"):
            runner.run()
        # Static shards keep the historical no-resume behaviour.
        rows = SweepRunner(
            tiny_grid(),
            backend=ShardBackend(shard_index=0, shard_count=2),
            output_path=tmp_path / "s.jsonl",
            resume=False,
        ).run()
        assert rows

    def test_lease_mode_requires_output_path(self, fast_cells, tmp_path):
        # Done markers promise the fleet the row is durable somewhere;
        # without an output file it would be durable nowhere.
        runner = SweepRunner(
            tiny_grid(),
            backend=ShardBackend(lease_dir=tmp_path / "leases", owner="w"),
        )
        with pytest.raises(ValueError, match="output path"):
            runner.run()
        assert not any((tmp_path / "leases").glob("*.done"))

    def test_spec_change_invalidates_lease_state(self, fast_cells, tmp_path):
        # Done markers are namespaced by the grid fingerprint: a reused
        # lease dir must never satisfy a revised spec with old markers.
        lease_dir = tmp_path / "leases"
        SweepRunner(
            tiny_grid(),
            backend=ShardBackend(lease_dir=lease_dir, owner="w0", lease_timeout=60),
            output_path=tmp_path / "w0.jsonl",
        ).run()
        revised = ScenarioGrid(
            tiny_config(rounds=2),  # base config changed, same cell ids
            {"heterogeneity": ["uniform", "extreme"],
             "aggregation": ["mean", "krum"]},
        )
        backend = ShardBackend(lease_dir=lease_dir, owner="w1", lease_timeout=60)
        rows = SweepRunner(
            revised, backend=backend, output_path=tmp_path / "w1.jsonl"
        ).run()
        assert backend.stats()["executed"] == len(revised)  # nothing skipped
        assert len(rows) == len(revised)

    def test_resume_reannounces_done_markers(self, fast_cells, tmp_path):
        # Crash between the JSONL append and mark_done: the row is
        # durable but the fleet can't see it.  A restarted worker must
        # restore the marker from its resume set instead of leaving
        # peers to wait out the lease timeout and re-run the cell.
        grid = tiny_grid()
        lease_dir = tmp_path / "leases"
        out = tmp_path / "w.jsonl"
        SweepRunner(
            grid,
            backend=ShardBackend(lease_dir=lease_dir, owner="w0", lease_timeout=60),
            output_path=out,
        ).run()
        victim = grid.cells()[0].cell_id
        store = LeaseStore(
            lease_dir, owner="x", timeout=60,
            namespace=grid_fingerprint(grid.cells()),
        )
        store.done_path(victim).unlink()  # the marker the crash lost

        backend = ShardBackend(lease_dir=lease_dir, owner="w0b", lease_timeout=60)
        SweepRunner(grid, backend=backend, output_path=out).run()
        assert backend.stats()["executed"] == 0  # nothing re-ran
        assert store.done_ok(victim) is True  # marker restored

    def test_runner_calls_backend_close(self, fast_cells):
        closed = []

        class Recording(SerialBackend):
            def close(self):
                closed.append(True)

        SweepRunner(tiny_grid(), backend=Recording()).run()
        assert closed == [True]

    def test_crashed_worker_cells_are_reclaimed(self, fast_cells, tmp_path):
        grid = tiny_grid()
        lease_dir = tmp_path / "leases"
        victim = grid.cells()[0].cell_id
        # A dead worker left a lease (no done marker) long ago.
        dead = LeaseStore(
            lease_dir, owner="dead", timeout=1,
            namespace=grid_fingerprint(grid.cells()),
        )
        assert dead.claim(victim)
        stale = time.time() - 100
        os.utime(dead.lease_path(victim), (stale, stale))

        backend = ShardBackend(
            lease_dir=lease_dir, owner="alive", lease_timeout=1, poll_interval=0.01
        )
        rows = SweepRunner(
            grid, backend=backend, output_path=tmp_path / "alive.jsonl"
        ).run()
        assert len(rows) == len(grid)  # the stale cell was reclaimed too
        assert dead.lease_owner(victim) == "alive"


def _fabricated_rows(grid):
    """Plausible completed rows without running any experiment."""
    return [fake_run_cell(
        {
            "index": cell.index,
            "cell_id": cell.cell_id,
            "axes": cell.axes,
            "config": config_to_dict(cell.config),
        }
    ) for cell in grid.cells()]


class TestMerge:
    def test_merge_reorders_and_is_byte_identical(self, tmp_path):
        grid = tiny_grid()
        rows = _fabricated_rows(grid)
        single = tmp_path / "single.jsonl"
        write_jsonl(single, rows)
        # Shards hold interleaved, out-of-order subsets.
        write_jsonl(tmp_path / "a.jsonl", [rows[3], rows[0]])
        write_jsonl(tmp_path / "b.jsonl", [rows[2], rows[1]])
        merged = tmp_path / "merged.jsonl"
        report = merge_shards(
            [tmp_path / "a.jsonl", tmp_path / "b.jsonl"], merged, grid=grid
        )
        assert merged.read_bytes() == single.read_bytes()
        assert report.cells == len(grid) and report.failed == 0

    def test_success_beats_error_and_duplicates_collapse(self, tmp_path):
        grid = tiny_grid()
        rows = _fabricated_rows(grid)
        error = {
            "schema": ROW_SCHEMA_VERSION,
            "index": rows[0]["index"],
            "cell_id": rows[0]["cell_id"],
            "axes": rows[0]["axes"],
            "config": rows[0]["config"],
            "error": {"schema": ERROR_ROW_SCHEMA_VERSION,
                      "exception": "ValueError: x", "traceback": [], "attempts": 1},
        }
        # Error row before and after the success: success survives both.
        write_jsonl(tmp_path / "a.jsonl", [error] + rows[:2])
        write_jsonl(tmp_path / "b.jsonl", rows[2:] + [error])
        merged_rows, report = merge_shard_rows(
            [tmp_path / "a.jsonl", tmp_path / "b.jsonl"], grid=grid
        )
        assert [row["cell_id"] for row in merged_rows] == [
            c.cell_id for c in grid.cells()
        ]
        assert report.failed == 0 and report.duplicates == 2

    def test_missing_cells_raise_unless_allowed(self, tmp_path):
        grid = tiny_grid()
        rows = _fabricated_rows(grid)
        write_jsonl(tmp_path / "a.jsonl", rows[:-1])
        with pytest.raises(ValueError, match="missing"):
            merge_shard_rows([tmp_path / "a.jsonl"], grid=grid)
        merged_rows, report = merge_shard_rows(
            [tmp_path / "a.jsonl"], grid=grid, require_complete=False
        )
        assert report.missing == [rows[-1]["cell_id"]]
        assert len(merged_rows) == len(grid) - 1

    def test_gridless_merge_checks_index_contiguity(self, tmp_path):
        grid = tiny_grid()
        rows = _fabricated_rows(grid)
        write_jsonl(tmp_path / "a.jsonl", [rows[0], rows[2], rows[3]])
        with pytest.raises(ValueError, match="missing"):
            merge_shard_rows([tmp_path / "a.jsonl"])

    def test_gridless_merge_of_empty_shards_fails(self, tmp_path):
        # Contiguity is vacuously true over zero rows; an all-empty
        # merge (e.g. a misconfigured fleet's eagerly-touched files)
        # must not pass as a complete sweep.
        (tmp_path / "a.jsonl").touch()
        (tmp_path / "b.jsonl").touch()
        with pytest.raises(ValueError, match="zero rows"):
            merge_shard_rows([tmp_path / "a.jsonl", tmp_path / "b.jsonl"])
        rows, report = merge_shard_rows(
            [tmp_path / "a.jsonl"], require_complete=False
        )
        assert rows == [] and report.cells == 0

    def test_axis_value_reorder_renumbers_rows(self, tmp_path):
        # Reordering values within an axis keeps every cell id and
        # config (so old rows pass vetting) but renumbers the cells;
        # the merge must emit the *edited* spec's enumeration.
        grid = tiny_grid()
        write_jsonl(tmp_path / "a.jsonl", _fabricated_rows(grid))
        reordered = ScenarioGrid(
            tiny_config(),
            {"heterogeneity": ["extreme", "uniform"],
             "aggregation": ["krum", "mean"]},
        )
        rows, report = merge_shard_rows([tmp_path / "a.jsonl"], grid=reordered)
        assert report.renumbered == len(grid)  # every cell moved
        expected = {c.cell_id: c.index for c in reordered.cells()}
        assert [row["cell_id"] for row in rows] == [
            c.cell_id for c in reordered.cells()
        ]
        assert all(row["index"] == expected[row["cell_id"]] for row in rows)

    def test_stale_rows_dropped_with_grid(self, tmp_path):
        grid = tiny_grid()
        rows = _fabricated_rows(grid)
        stale = json.loads(json.dumps(rows[0]))
        stale["config"]["rounds"] = 99  # from an older spec
        old_schema = json.loads(json.dumps(rows[1]))
        old_schema["schema"] = ROW_SCHEMA_VERSION - 1
        write_jsonl(tmp_path / "a.jsonl", [stale, old_schema] + rows)
        merged_rows, report = merge_shard_rows([tmp_path / "a.jsonl"], grid=grid)
        assert report.stale == 2
        assert [row["summary"]["rounds"] for row in merged_rows] == [1] * len(grid)


class TestIterRowsToHistories:
    def test_streams_from_path_and_matches_eager(self):
        pairs = list(iter_rows_to_histories(FIXTURE))
        eager = rows_to_histories(read_jsonl(FIXTURE))
        assert dict((k, h.rounds) for k, h in pairs) == {
            k: h.rounds for k, h in eager.items()
        }
        assert len(pairs) == 4

    def test_skips_error_rows(self):
        rows = [
            {"cell_id": "bad", "history": {}, "error": {"exception": "x"}},
        ]
        assert list(iter_rows_to_histories(rows)) == []

    def test_other_schema_rows_skipped_with_warning(self, caplog):
        rows = [
            {"cell_id": "old", "history": {}, "schema": ROW_SCHEMA_VERSION - 1},
        ]
        with caplog.at_level("WARNING", logger="repro.sweep.runner"):
            assert list(iter_rows_to_histories(rows)) == []
        assert "schema" in caplog.text  # an archived file isn't silently empty


class TestCliBackends:
    SPEC = {
        "base": {
            "num_clients": 4, "num_byzantine": 1, "rounds": 1, "num_samples": 40,
            "batch_size": 8, "mlp_hidden": [8, 4], "seed": 5,
        },
        "axes": {"aggregation": ["mean", "krum"]},
    }

    def _write_spec(self, tmp_path, extra=None):
        spec = json.loads(json.dumps(self.SPEC))
        spec.update(extra or {})
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        return spec_path

    def test_sweep_without_subcommand_still_runs(self, fast_cells, capsys, tmp_path):
        code = main(["sweep", str(self._write_spec(tmp_path)), "--dry-run"])
        assert code == 0
        assert "2 cells" in capsys.readouterr().out

    def test_sweep_flag_first_still_runs(self, fast_cells, capsys, tmp_path):
        # argparse always allowed optionals before the positional spec.
        code = main(["sweep", "--dry-run", str(self._write_spec(tmp_path))])
        assert code == 0
        assert "2 cells" in capsys.readouterr().out

    def test_dry_run_vets_fleet_flags(self, fast_cells, capsys, tmp_path):
        # A --dry-run pre-flight must not green-light a bad launch line.
        spec = str(self._write_spec(tmp_path))
        assert main(["sweep", "run", spec, "--dry-run", "--shard", "9/2"]) == 2
        assert "--shard index" in capsys.readouterr().err
        # ...and a valid one stays side-effect free: no lease dir yet.
        lease_dir = tmp_path / "leases"
        code = main(["sweep", "run", spec, "--dry-run",
                     "--lease-dir", str(lease_dir),
                     "--output", str(tmp_path / "w.jsonl")])
        assert code == 0
        assert not lease_dir.exists()

    def test_sweep_run_subcommand(self, fast_cells, capsys, tmp_path):
        out_path = tmp_path / "rows.jsonl"
        code = main(["sweep", "run", str(self._write_spec(tmp_path)),
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells/s" in out and "eta" in out
        assert len(read_jsonl(out_path)) == 2

    def test_quiet_suppresses_progress(self, fast_cells, capsys, tmp_path):
        code = main(["sweep", "run", str(self._write_spec(tmp_path)), "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "done" not in out and "cells/s" not in out
        assert "aggregation" in out  # the summary table still prints

    def test_shard_flags_run_and_merge_byte_identical(
        self, fast_cells, capsys, tmp_path
    ):
        spec = self._write_spec(tmp_path)
        single = tmp_path / "single.jsonl"
        assert main(["sweep", "run", str(spec), "--output", str(single),
                     "--quiet"]) == 0
        for index in range(2):
            code = main([
                "sweep", "run", str(spec), "--backend", "shard",
                "--shard", f"{index}/2", "--quiet",
                "--output", str(tmp_path / f"shard{index}.jsonl"),
            ])
            assert code == 0
        merged = tmp_path / "merged.jsonl"
        code = main(["sweep", "merge",
                     str(tmp_path / "shard0.jsonl"), str(tmp_path / "shard1.jsonl"),
                     "--output", str(merged), "--spec", str(spec)])
        assert code == 0
        assert merged.read_bytes() == single.read_bytes()
        assert "merged 2 cell(s)" in capsys.readouterr().out

    def test_lease_dir_flag(self, fast_cells, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        code = main([
            "sweep", "run", str(spec), "--lease-dir", str(tmp_path / "leases"),
            "--lease-timeout", "60", "--quiet",
            "--output", str(tmp_path / "w0.jsonl"),
        ])
        assert code == 0
        assert len(read_jsonl(tmp_path / "w0.jsonl")) == 2

    def test_shard_flag_validation(self, fast_cells, capsys, tmp_path):
        spec = str(self._write_spec(tmp_path))
        assert main(["sweep", "run", spec, "--backend", "serial",
                     "--shard", "0/2"]) == 2
        assert "require --backend shard" in capsys.readouterr().err
        assert main(["sweep", "run", spec, "--shard", "nope"]) == 2
        assert "i/M" in capsys.readouterr().err
        assert main(["sweep", "run", spec, "--backend", "shard"]) == 2
        assert "needs --shard" in capsys.readouterr().err
        assert main(["sweep", "run", spec, "--shard", "0/2",
                     "--lease-dir", str(tmp_path)]) == 2
        assert "exclusive" in capsys.readouterr().err
        # Per-host pools are not a thing for shard workers: say so
        # instead of silently running serially.
        assert main(["sweep", "run", spec, "--shard", "0/2",
                     "--workers", "4"]) == 2
        assert "launch more shard workers" in capsys.readouterr().err
        # An explicit serial backend with a pool request is the same
        # kind of silent-serial trap.
        assert main(["sweep", "run", spec, "--backend", "serial",
                     "--workers", "4"]) == 2
        assert "process backend" in capsys.readouterr().err
        # ...and so is a lease knob without lease mode.
        assert main(["sweep", "run", spec, "--lease-timeout", "60"]) == 2
        assert "--lease-dir" in capsys.readouterr().err

    def test_spec_defaults_yield_to_explicit_flags(
        self, fast_cells, capsys, tmp_path
    ):
        # A spec-level workers default must not block an explicit
        # serial run, and JSON null execution values mean "unset".
        spec = self._write_spec(
            tmp_path, extra={"execution": {"workers": 4}}
        )
        assert main(["sweep", "run", str(spec), "--backend", "serial",
                     "--quiet"]) == 0
        null_spec = self._write_spec(
            tmp_path, extra={"execution": {"workers": None, "backend": None}}
        )
        assert main(["sweep", "run", str(null_spec), "--quiet"]) == 0

    def test_execution_spec_section(self, fast_cells, capsys, tmp_path):
        spec = self._write_spec(
            tmp_path, extra={"execution": {"max_retries": 2, "backend": "serial"}}
        )
        assert main(["sweep", "run", str(spec), "--quiet"]) == 0
        bad = self._write_spec(tmp_path, extra={"execution": {"bogus": 1}})
        assert main(["sweep", "run", str(bad)]) == 2
        assert "unknown execution keys" in capsys.readouterr().err

    def test_execution_spec_values_type_checked(self, fast_cells, capsys, tmp_path):
        for execution, fragment in (
            ({"workers": "4"}, '"workers" must be an integer'),
            ({"max_retries": True}, '"max_retries" must be an integer'),
            ({"lease_timeout": "soon"}, '"lease_timeout" must be a number'),
            ({"backend": "bogus"}, '"backend" must be one of'),
        ):
            spec = self._write_spec(tmp_path, extra={"execution": execution})
            assert main(["sweep", "run", str(spec)]) == 2
            assert fragment in capsys.readouterr().err

    def test_cli_lease_without_output_fails_loudly(
        self, fast_cells, capsys, tmp_path
    ):
        spec = self._write_spec(tmp_path)
        code = main(["sweep", "run", str(spec),
                     "--lease-dir", str(tmp_path / "leases")])
        assert code == 2
        assert "output path" in capsys.readouterr().err

    def test_shard_flags_override_spec_backend_default(
        self, fast_cells, capsys, tmp_path
    ):
        # The same spec serves every worker: a spec-level single-host
        # backend default must not block host-specific --shard flags.
        spec = self._write_spec(
            tmp_path, extra={"execution": {"backend": "process", "workers": 2}}
        )
        out_path = tmp_path / "shard0.jsonl"
        code = main(["sweep", "run", str(spec), "--shard", "0/2",
                     "--output", str(out_path), "--quiet"])
        assert code == 0
        assert "other shards" in capsys.readouterr().out
        assert len(read_jsonl(out_path)) == 1

    def test_no_resume_with_lease_dir_fails_loudly(
        self, fast_cells, capsys, tmp_path
    ):
        spec = self._write_spec(tmp_path)
        code = main(["sweep", "run", str(spec), "--lease-dir",
                     str(tmp_path / "leases"), "--no-resume"])
        assert code == 2
        assert "lease" in capsys.readouterr().err

    def test_shard_progress_shows_rate_without_eta(
        self, fast_cells, capsys, tmp_path
    ):
        spec = self._write_spec(tmp_path)
        code = main(["sweep", "run", str(spec), "--shard", "0/2"])
        assert code == 0
        out = capsys.readouterr().out
        # A shard worker cannot know its share up front: rate only.
        assert "cells/s" in out and "eta" not in out

    def test_failed_cells_reported_and_exit_nonzero(
        self, monkeypatch, capsys, tmp_path
    ):
        def failing(payload):
            if "krum" in payload["cell_id"]:
                raise RuntimeError("boom")
            return fake_run_cell(payload)

        monkeypatch.setattr("repro.sweep.executors.run_cell", failing)
        out_path = tmp_path / "rows.jsonl"
        code = main(["sweep", "run", str(self._write_spec(tmp_path)),
                     "--output", str(out_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "failed" in out and "RuntimeError: boom" in out
        assert "FAILED" in out  # summary table marks the cell
        # Merge reports the failure too (and exits non-zero).
        code = main(["sweep", "merge", str(out_path),
                     "--output", str(tmp_path / "merged.jsonl"),
                     "--allow-incomplete"])
        assert code == 1
        assert "error rows" in capsys.readouterr().out

    def test_merge_allow_incomplete_exits_zero(self, fast_cells, capsys, tmp_path):
        # The opt-in flag must not fail the pipeline it exists to enable.
        spec = self._write_spec(tmp_path)
        shard0 = tmp_path / "shard0.jsonl"
        assert main(["sweep", "run", str(spec), "--shard", "0/2",
                     "--output", str(shard0), "--quiet"]) == 0
        out = tmp_path / "partial.jsonl"
        assert main(["sweep", "merge", str(shard0), "--output", str(out),
                     "--spec", str(spec), "--allow-incomplete"]) == 0
        assert "missing" in capsys.readouterr().out
        assert len(read_jsonl(out)) == 1

    def test_merge_missing_shard_file(self, capsys, tmp_path):
        code = main(["sweep", "merge", str(tmp_path / "nope.jsonl"),
                     "--output", str(tmp_path / "m.jsonl")])
        assert code == 2
        assert "not found" in capsys.readouterr().err
