"""Tests for the executable Section 4 constructions (theory package)."""

import numpy as np
import pytest

from repro.theory.bounds import (
    hyperbox_approximation_ratio_experiment,
    hyperbox_contraction_experiment,
)
from repro.theory.counterexamples import (
    krum_unbounded_instance,
    md_geom_non_convergence_instance,
    safe_area_unbounded_instance,
)


class TestSafeAreaCounterexample:
    def test_ratio_is_huge(self):
        report = safe_area_unbounded_instance()
        assert report.measured_ratio > 100.0

    def test_ratio_grows_as_epsilon_shrinks(self):
        loose = safe_area_unbounded_instance(epsilon=1e-2)
        tight = safe_area_unbounded_instance(epsilon=1e-4)
        assert tight.measured_ratio > loose.measured_ratio

    def test_distance_to_true_median_is_x(self):
        report = safe_area_unbounded_instance(x=7.0)
        assert report.details["distance_to_true_median"] == pytest.approx(7.0, rel=0.05)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            safe_area_unbounded_instance(d=2)


class TestKrumCounterexample:
    def test_ratio_infinite(self):
        report = krum_unbounded_instance()
        assert report.measured_ratio == float("inf")

    def test_krum_output_differs_from_median(self):
        report = krum_unbounded_instance()
        assert report.details["distance_to_true_median"] > 0.0

    def test_different_seeds_still_unbounded(self):
        for seed in (1, 2, 3):
            assert krum_unbounded_instance(seed=seed).measured_ratio == float("inf")


class TestMdGeomNonConvergence:
    def test_adversarial_execution_does_not_converge(self):
        report = md_geom_non_convergence_instance(rounds=5)
        assert report["converged"] is False
        diameters = report["diameters"]
        # The Weiszfeld tolerance introduces a tiny per-round drift; the
        # diameter must stay at the initial separation up to that drift.
        assert diameters[-1] == pytest.approx(diameters[0], rel=1e-4)

    def test_diameter_constant_every_round(self):
        report = md_geom_non_convergence_instance(rounds=4)
        diameters = report["diameters"]
        assert max(diameters) - min(diameters) < 1e-4 * max(diameters)

    def test_benign_scheduler_converges(self):
        report = md_geom_non_convergence_instance(rounds=4, tie_break="first")
        assert report["converged"] is True

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            md_geom_non_convergence_instance(n=9, t=2)  # odd honest count
        with pytest.raises(ValueError):
            md_geom_non_convergence_instance(n=6, t=2)  # violates t < n/3


class TestHyperboxBounds:
    def test_ratio_within_2_sqrt_d(self):
        result = hyperbox_approximation_ratio_experiment(trials=10, d=5)
        assert result.within_bound
        assert result.max_ratio <= result.bound

    def test_bound_value(self):
        result = hyperbox_approximation_ratio_experiment(trials=2, d=9)
        assert result.bound == pytest.approx(6.0)

    def test_contraction_converges_under_sign_flip(self):
        report = hyperbox_contraction_experiment(rounds=6)
        assert report["converged"]
        assert report["diameters"][-1] < report["diameters"][0]

    def test_contraction_converges_under_partition_attack(self):
        from repro.byzantine.partition import PartitionAttack

        attack = PartitionAttack(group_a=[0, 1, 2, 3], group_b=[4, 5, 6, 7, 8])
        report = hyperbox_contraction_experiment(rounds=8, attack=attack)
        assert report["converged"]
        # Per-round contraction should eventually be at most ~1/2 + slack.
        late_factors = report["contraction_factors"][1:]
        assert all(f <= 0.75 + 1e-9 for f in late_factors if f > 0)
