"""Topology-aware communication plane acceptance tests.

Five contracts of the sparse-topology refactor:

1. **Generators** — every named topology is seeded and deterministic,
   with actionable errors for infeasible parameterisations.
2. **Structure** — :class:`Topology` exposes a frozen symmetric mask
   with a ``True`` diagonal, sorted closed neighbourhoods, and edge
   removal (:meth:`Topology.without_edges`) as the partition primitive.
3. **Validation** — disconnected graphs and quorum-infeasible degrees
   fail fast with diagnostics that name the fix.
4. **Delivery** — the engines intersect the topology mask with their
   own drop/crash/delay masks: both message planes agree bitwise under
   a sparse topology, and an explicit complete topology is
   bitwise-identical to no topology at all (the ``None`` default the
   pinned pre-refactor fixtures exercise).
5. **Learning / sweep integration** — gossip exchange runs on sparse
   graphs, full agreement refuses infeasible ones, partitions
   apply/heal, and the ``topology`` axis round-trips through configs,
   grids and lease bookkeeping.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.byzantine import TopologyPartition, partition_cut
from repro.engine import make_scheduler
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.network.delivery import full_broadcast_plan
from repro.network.topology import (
    TOPOLOGY_NAMES,
    Topology,
    make_topology,
    resolve_topology_name,
    validate_topology,
)
from repro.sweep.grid import ScenarioGrid, config_from_dict, config_to_dict


# ---------------------------------------------------------------------------
# 1. generators
# ---------------------------------------------------------------------------

class TestGenerators:
    def test_registry_names(self):
        assert TOPOLOGY_NAMES == (
            "complete", "ring", "torus", "random-regular", "clusters"
        )

    @pytest.mark.parametrize("alias", ["expander", "random_regular", "EXPANDER"])
    def test_aliases_resolve(self, alias):
        assert resolve_topology_name(alias) == "random-regular"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology_name("star")

    @pytest.mark.parametrize("name,kwargs", [
        ("complete", {}),
        ("ring", {}),
        ("torus", {}),
        ("random-regular", {"degree": 4}),
        ("clusters", {"clusters": 3, "bridges": 2}),
    ])
    def test_deterministic_per_seed(self, name, kwargs):
        a = make_topology(name, 12, seed=7, **kwargs)
        b = make_topology(name, 12, seed=7, **kwargs)
        assert np.array_equal(a.mask, b.mask)
        assert a.name == name

    def test_random_regular_varies_with_seed(self):
        masks = {
            make_topology("random-regular", 16, seed=s).mask.tobytes()
            for s in range(6)
        }
        assert len(masks) > 1

    def test_torus_dimensions(self):
        topo = make_topology("torus", 12, rows=3, cols=4)
        # Interior torus nodes have exactly 4 neighbours.
        assert topo.min_degree == topo.max_degree == 4
        with pytest.raises(ValueError, match="rows\\*cols == n"):
            make_topology("torus", 12, rows=5)

    def test_ring_needs_three_nodes(self):
        with pytest.raises(ValueError, match="n >= 3"):
            make_topology("ring", 2)

    def test_random_regular_parity(self):
        with pytest.raises(ValueError, match="n\\*degree even"):
            make_topology("random-regular", 7, degree=3)

    def test_bad_kwargs_rejected(self):
        with pytest.raises(ValueError, match="bad topology kwargs"):
            make_topology("ring", 8, degree=3)

    def test_disconnected_clusters_fail_fast(self):
        with pytest.raises(ValueError, match="disconnected"):
            make_topology("clusters", 10, clusters=2, bridges=0)


# ---------------------------------------------------------------------------
# 2. structure
# ---------------------------------------------------------------------------

class TestTopologyStructure:
    def test_mask_frozen_symmetric_true_diagonal(self):
        topo = make_topology("ring", 6)
        assert topo.mask.shape == (6, 6)
        assert np.array_equal(topo.mask, topo.mask.T)
        assert topo.mask.diagonal().all()
        with pytest.raises(ValueError):
            topo.mask[0, 3] = True

    def test_neighbours_sorted_and_closed(self):
        topo = make_topology("ring", 6)
        assert topo.neighbours(0).tolist() == [0, 1, 5]
        assert topo.neighbours(3).tolist() == [2, 3, 4]
        assert topo.degrees.tolist() == [2] * 6
        assert topo.num_edges == 6

    def test_complete_detection(self):
        assert make_topology("complete", 5).is_complete
        assert not make_topology("ring", 5).is_complete

    def test_without_edges(self):
        topo = make_topology("ring", 5)
        cut = topo.without_edges([(0, 1)])
        assert cut.name == "ring+cut"
        assert not cut.mask[0, 1] and not cut.mask[1, 0]
        assert cut.is_connected  # a ring survives one cut as a path
        assert topo.mask[0, 1]  # the original is untouched
        with pytest.raises(ValueError, match="self-delivery"):
            topo.without_edges([(2, 2)])

    def test_connected_components(self):
        mask = np.eye(5, dtype=bool)
        mask[0, 1] = mask[1, 0] = True
        mask[2, 3] = mask[3, 2] = True
        topo = Topology("synthetic", mask)
        assert topo.connected_components() == [[0, 1], [2, 3], [4]]
        assert not topo.is_connected

    def test_asymmetric_mask_rejected(self):
        mask = np.eye(3, dtype=bool)
        mask[0, 1] = True
        with pytest.raises(ValueError, match="symmetric"):
            Topology("bad", mask)

    def test_summary_is_json_safe(self):
        summary = make_topology("clusters", 9, clusters=3, bridges=1).summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["n"] == 9 and summary["complete"] is False


# ---------------------------------------------------------------------------
# 3. validation diagnostics
# ---------------------------------------------------------------------------

class TestValidation:
    def test_quorum_infeasible_names_the_fix(self):
        topo = make_topology("ring", 8)
        with pytest.raises(ValueError) as err:
            validate_topology(topo, 8, t=1)
        message = str(err.value)
        assert "closed degree" in message
        assert "gossip" in message

    def test_quorum_feasible_passes(self):
        topo = make_topology("random-regular", 8, degree=6)
        validate_topology(topo, 8, t=1)

    def test_wrong_n_rejected(self):
        with pytest.raises(ValueError, match="n=4 was expected"):
            validate_topology(make_topology("ring", 6), 4)


# ---------------------------------------------------------------------------
# 4. delivery: engines under sparse topologies
# ---------------------------------------------------------------------------

SCHEDULER_SETUPS = {
    "synchronous": {},
    "partial": {"delay": 2, "seed": 11},
    "lossy": {"drop_rate": 0.2, "crash_schedule": ((1, 1, 3),), "seed": 11},
    "asynchronous": {"wait_timeout": 2.0, "burstiness": 0.4, "seed": 11},
}


def _run_exchange(scheduler, plane, topology, *, n=8, rounds=5):
    """Drive full-broadcast rounds under ``topology``; comparable state."""
    kwargs = dict(SCHEDULER_SETUPS[scheduler])
    engine = make_scheduler(
        scheduler, n, (n - 1,), keep_history=False,
        message_plane=plane, topology=topology, **kwargs
    )
    if scheduler == "asynchronous":
        engine.wait_for(count=2)
    rng = np.random.default_rng(3)
    payloads = {node: rng.normal(size=(rounds, 4)) for node in range(n)}
    state = []
    for round_index in range(rounds):
        plans = [
            full_broadcast_plan(node, payloads[node][round_index])
            for node in range(n)
        ]
        result = engine.submit(plans, round_index)
        for node in range(n):
            inbox = result.inboxes.get(node, [])
            if len(inbox):
                state.append((node, result.received_matrix(node).tobytes(),
                              tuple(result.senders(node))))
            else:
                state.append((node, b"", ()))
    return state, engine.stats_snapshot(), engine.trace_snapshot()


class TestEngineTopology:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_SETUPS))
    def test_cross_plane_identical_under_ring(self, scheduler):
        ring = make_topology("ring", 8)
        assert _run_exchange(scheduler, "object", ring) == \
            _run_exchange(scheduler, "batch", ring)

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_SETUPS))
    def test_complete_topology_bitwise_matches_none(self, scheduler):
        complete = make_topology("complete", 8)
        assert _run_exchange(scheduler, "batch", complete) == \
            _run_exchange(scheduler, "batch", None)

    def test_sparse_topology_restricts_receivers(self):
        ring = make_topology("ring", 8)
        state, stats, _ = _run_exchange("synchronous", "batch", ring)
        for node, _, senders in state:
            assert set(senders) <= set(ring.neighbours(node).tolist())
        # 8 senders x 3 closed-neighbourhood receivers x 5 rounds.
        assert stats["delivered"] == 8 * 3 * 5

    def test_set_topology_rejects_mismatched_n(self):
        engine = make_scheduler("synchronous", 6)
        with pytest.raises(ValueError):
            engine.set_topology(make_topology("ring", 8))
        with pytest.raises(TypeError):
            engine.set_topology("ring")

    def test_make_scheduler_threads_topology(self):
        ring = make_topology("ring", 6)
        engine = make_scheduler("synchronous", 6, topology=ring)
        assert engine.topology is ring


# ---------------------------------------------------------------------------
# 5a. learning integration
# ---------------------------------------------------------------------------

def tiny_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="decentralized",
        aggregation="box-geom",
        num_clients=6,
        num_byzantine=1,
        rounds=2,
        num_samples=60,
        batch_size=8,
        mlp_hidden=(8, 4),
        seed=5,
    )
    return base.with_overrides(**overrides)


class TestLearningIntegration:
    def test_gossip_on_ring_runs(self):
        history = run_experiment(tiny_config(topology="ring", exchange="gossip"))
        assert len(history.records) == 2
        assert np.isfinite(history.final_accuracy())

    def test_agreement_refuses_infeasible_topology(self):
        with pytest.raises(ValueError, match="quorum"):
            run_experiment(tiny_config(topology="ring"))

    def test_agreement_runs_on_dense_topology(self):
        history = run_experiment(
            tiny_config(topology="random-regular", topology_kwargs={"degree": 5})
        )
        assert len(history.records) == 2

    def test_alias_resolved_in_config(self):
        assert tiny_config(topology="expander").topology == "random-regular"

    def test_sparse_topology_needs_decentralized(self):
        with pytest.raises(ValueError, match="decentralized"):
            tiny_config(setting="centralized", topology="ring", exchange="gossip")

    def test_complete_default_bitwise_stable(self):
        # topology="complete" must not perturb the pre-topology RNG
        # streams: the explicit default and an untouched config agree.
        from repro.io.results import history_to_dict

        base = history_to_dict(run_experiment(tiny_config()))
        explicit = history_to_dict(run_experiment(tiny_config(topology="complete")))
        assert base == explicit


class TestTopologyPartition:
    def test_partition_cut_lists_crossing_edges(self):
        topo = make_topology("clusters", 10, clusters=2, bridges=2, seed=3)
        cut = partition_cut(topo, range(5), range(5, 10))
        assert cut  # the bridges
        for u, v in cut:
            assert (u < 5) != (v < 5)

    def test_apply_and_heal(self):
        topo = make_topology("clusters", 10, clusters=2, bridges=2, seed=3)
        engine = make_scheduler("synchronous", 10, topology=topo)
        partition = TopologyPartition(range(5), range(5, 10))
        cut = partition.apply(engine)
        assert partition.active
        assert not cut.mask[:5, 5:].any()
        assert engine.topology is cut
        partition.heal(engine)
        assert engine.topology is topo
        assert not partition.active
        # The cycle is reusable.
        partition.apply(engine)
        partition.heal(engine)

    def test_apply_twice_rejected(self):
        engine = make_scheduler("synchronous", 6)
        partition = TopologyPartition(range(3), range(3, 6))
        partition.apply(engine)
        with pytest.raises(RuntimeError):
            partition.apply(engine)

    def test_heal_without_apply_rejected(self):
        engine = make_scheduler("synchronous", 6)
        with pytest.raises(RuntimeError):
            TopologyPartition(range(3), range(3, 6)).heal(engine)

    def test_partition_on_complete_default(self):
        # An engine without an explicit topology partitions against the
        # implied complete graph.
        engine = make_scheduler("synchronous", 6)
        partition = TopologyPartition(range(3), range(3, 6))
        cut = partition.apply(engine)
        assert not cut.mask[:3, 3:].any()
        partition.heal(engine)
        assert engine.topology is None or engine.topology.is_complete


# ---------------------------------------------------------------------------
# 5b. config / sweep integration
# ---------------------------------------------------------------------------

class TestConfigAndSweep:
    def test_config_dict_elides_defaults(self):
        data = config_to_dict(tiny_config())
        assert "topology" not in data
        assert "topology_kwargs" not in data
        assert "exchange" not in data

    def test_config_dict_keeps_non_defaults(self):
        config = tiny_config(
            topology="random-regular",
            topology_kwargs={"degree": 5},
            exchange="gossip",
        )
        data = json.loads(json.dumps(config_to_dict(config)))
        assert data["topology"] == "random-regular"
        assert data["topology_kwargs"] == {"degree": 5}
        assert data["exchange"] == "gossip"
        assert config_from_dict(data) == config

    def test_empty_kwargs_elided_with_sparse_topology(self):
        data = config_to_dict(tiny_config(topology="ring", exchange="gossip"))
        assert data["topology"] == "ring"
        assert "topology_kwargs" not in data
        assert config_from_dict(data) == tiny_config(topology="ring",
                                                     exchange="gossip")

    def test_topology_axis_round_trips_through_grid(self):
        grid = ScenarioGrid(
            base=tiny_config(exchange="gossip"),
            axes={"topology": ["complete", "ring", "torus"]},
        )
        cells = grid.cells()
        assert [c.cell_id for c in cells] == [
            "topology=complete", "topology=ring", "topology=torus"
        ]
        for cell in cells:
            restored = config_from_dict(
                json.loads(json.dumps(config_to_dict(cell.config)))
            )
            assert restored == cell.config

    def test_grid_spec_with_topology_axis(self):
        spec = {
            "base": {
                "setting": "decentralized", "aggregation": "box-geom",
                "rounds": 2, "num_clients": 6, "num_samples": 60,
                "exchange": "gossip",
            },
            "axes": {"topology": ["ring", "clusters"], "seed": [0, 1]},
        }
        grid = ScenarioGrid.from_spec(spec)
        assert len(grid) == 4
        assert grid.axis_names() == ["topology", "seed"]
        assert grid.cells()[0].cell_id == "topology=ring/seed=0"


class TestSweepByteIdentity:
    """The topology axis must ride resume and shard-merge untouched."""

    def _grid(self) -> ScenarioGrid:
        return ScenarioGrid(
            tiny_config(rounds=1, exchange="gossip"),
            {"topology": ["complete", "ring"]},
        )

    def test_resume_trusts_topology_rows(self, tmp_path):
        from repro.sweep import SweepRunner

        out = tmp_path / "rows.jsonl"
        SweepRunner(self._grid(), output_path=out).run()
        first = out.read_bytes()
        reused = []
        SweepRunner(
            self._grid(), output_path=out,
            on_cell=lambda cell, row, cached: reused.append(cached),
        ).run()
        assert reused == [True, True]
        assert out.read_bytes() == first

    def test_shard_merge_byte_identical(self, tmp_path):
        from repro.sweep import SweepRunner, merge_shards
        from repro.sweep.executors import ShardBackend

        single = tmp_path / "single.jsonl"
        SweepRunner(self._grid(), output_path=single).run()
        shards = []
        for index in range(2):
            out = tmp_path / f"shard{index}.jsonl"
            backend = ShardBackend(shard_index=index, shard_count=2)
            SweepRunner(self._grid(), backend=backend, output_path=out).run()
            shards.append(out)
        merged = tmp_path / "merged.jsonl"
        report = merge_shards(shards, merged, grid=self._grid())
        assert merged.read_bytes() == single.read_bytes()
        assert not report.missing and not report.failed


# ---------------------------------------------------------------------------
# 5c. lease-dir status scan
# ---------------------------------------------------------------------------

class TestLeaseStatus:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_scan_counts_states(self, tmp_path):
        from repro.sweep.executors import scan_lease_dir

        self._write(tmp_path / "a.lease", {"owner": "host:1:1", "claimed_unix": 0})
        self._write(tmp_path / "a.done", {"ok": True, "owner": "host:1:1"})
        self._write(tmp_path / "b.lease", {"owner": "host:2:2", "claimed_unix": 0})
        self._write(tmp_path / "c.lease", {"owner": "host:3:3", "claimed_unix": 0})
        old = 10_000.0
        os.utime(tmp_path / "c.lease", (old, old))
        self._write(tmp_path / "d.done", {"ok": False, "owner": "host:4:4"})
        (tmp_path / "e.lease.tmp").write_text("{", encoding="utf-8")

        status = scan_lease_dir(tmp_path, timeout=300.0)
        assert status["done_ok"] == 1
        assert status["done_failed"] == 1
        assert status["in_progress"] == 2  # b (fresh) + c (stale)
        assert status["stale"] == 1
        assert status["keys"] == {
            "a": "done", "b": "claimed", "c": "stale", "d": "failed"
        }
        assert status["owners"]["host:2:2"]["claimed"] == 1
        assert status["owners"]["host:3:3"]["stale"] == 1

    def test_scan_rejects_missing_dir_and_bad_timeout(self, tmp_path):
        from repro.sweep.executors import scan_lease_dir

        with pytest.raises(FileNotFoundError):
            scan_lease_dir(tmp_path / "nope")
        with pytest.raises(ValueError):
            scan_lease_dir(tmp_path, timeout=0)

    def test_lease_keys_cover_grid(self):
        from repro.sweep.executors import _lease_key, grid_fingerprint, \
            lease_keys_for_cells

        grid = ScenarioGrid(
            base=tiny_config(exchange="gossip"),
            axes={"topology": ["complete", "ring"]},
        )
        cells = grid.cells()
        keys = lease_keys_for_cells(cells)
        namespace = grid_fingerprint(cells)
        assert keys == {
            cell.cell_id: _lease_key(cell.cell_id, namespace) for cell in cells
        }
        assert len(set(keys.values())) == len(cells)

    def test_cli_status_reports_progress(self, tmp_path, capsys):
        from repro.cli import main

        self._write(tmp_path / "a.done", {"ok": True, "owner": "w1"})
        self._write(tmp_path / "b.lease", {"owner": "w2", "claimed_unix": 0})
        code = main(["sweep", "status", "--lease-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "done: 1" in out and "in progress: 1" in out
        assert "w1" in out and "w2" in out

    def test_cli_status_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["sweep", "status", "--lease-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def _write_spec(self, path, axes):
        from repro.sweep.grid import config_to_dict

        base = config_to_dict(tiny_config(exchange="gossip"))
        self._write(path, {"base": base, "axes": axes})

    def test_cli_status_foreign_spec_named(self, tmp_path, capsys):
        """A spec whose fingerprint matches no lease says so, loudly.

        Lease keys are namespaced by the grid fingerprint, so pointing
        ``status`` at the wrong spec used to report every cell as
        unclaimed and every lease as from "a different spec" — reading
        like a sweep that never started.  The mismatch is now named.
        """
        from repro.cli import main
        from repro.sweep.executors import lease_keys_for_cells
        from repro.sweep.grid import ScenarioGrid

        lease_dir = tmp_path / "leases"
        lease_dir.mkdir()
        ran_spec = tmp_path / "ran.json"
        self._write_spec(ran_spec, {"topology": ["complete", "ring"]})
        grid = ScenarioGrid.from_spec(
            json.loads(ran_spec.read_text(encoding="utf-8"))
        )
        for key in lease_keys_for_cells(list(grid.validate())).values():
            self._write(lease_dir / f"{key}.done", {"ok": True, "owner": "w1"})

        # The matching spec reports exact progress: all cells done.
        code = main(["sweep", "status", "--lease-dir", str(lease_dir),
                     "--spec", str(ran_spec)])
        out = capsys.readouterr().out
        assert code == 0
        assert "unclaimed: 0" in out and "total: 2" in out
        assert "foreign spec" not in out

        # A foreign spec (different axes -> different fingerprint) is
        # diagnosed instead of rendering misleading unclaimed counts.
        other_spec = tmp_path / "other.json"
        self._write_spec(other_spec, {"seed": [0, 1, 2]})
        code = main(["sweep", "status", "--lease-dir", str(lease_dir),
                     "--spec", str(other_spec)])
        out = capsys.readouterr().out
        assert code == 0
        assert "foreign spec" in out
        assert "unclaimed:" not in out
        assert "total: 3" in out
