"""Tests for repro.utils.timer and repro.utils.logging."""

import logging

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.timer import Timer


class TestTimer:
    def test_measure_records(self):
        timer = Timer()
        with timer.measure("work"):
            _ = sum(range(100))
        assert timer.count("work") == 1
        assert timer.total("work") >= 0.0

    def test_multiple_measurements_accumulate(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure("loop"):
                pass
        assert timer.count("loop") == 3
        assert timer.total("loop") >= 0.0

    def test_unknown_name_is_zero(self):
        timer = Timer()
        assert timer.total("missing") == 0.0
        assert timer.count("missing") == 0
        assert timer.mean("missing") == 0.0

    def test_mean(self):
        timer = Timer()
        with timer.measure("x"):
            pass
        assert timer.mean("x") == timer.total("x")

    def test_summary_keys(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert set(timer.summary()) == {"a", "b"}

    def test_exception_still_recorded(self):
        timer = Timer()
        try:
            with timer.measure("fail"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.count("fail") == 1


class TestLogging:
    def test_root_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_namespaced(self):
        assert get_logger("learning").name == "repro.learning"

    def test_already_namespaced_not_doubled(self):
        assert get_logger("repro.linalg").name == "repro.linalg"

    def test_set_verbosity_toggles_level(self):
        set_verbosity(True)
        assert get_logger().level == logging.INFO
        set_verbosity(False)
        assert get_logger().level == logging.WARNING
