"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngFactory,
    as_generator,
    spawn_generators,
    stable_component_seed,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_streams_are_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(100) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_same_seed(self):
        a = [g.random(10) for g in spawn_generators(9, 2)]
        b = [g.random(10) for g in spawn_generators(9, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(3), 2)
        assert len(gens) == 2


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(1)
        a = factory.generator("client-0").random(4)
        b = factory.generator("client-0").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(1)
        a = factory.generator("client-0").random(4)
        b = factory.generator("client-1").random(4)
        assert not np.array_equal(a, b)

    def test_generators_mapping(self):
        factory = RngFactory(5)
        mapping = factory.generators(["a", "b"])
        assert set(mapping) == {"a", "b"}


class TestStableComponentSeed:
    def test_deterministic(self):
        assert stable_component_seed(3, "client", 1) == stable_component_seed(3, "client", 1)

    def test_component_sensitivity(self):
        assert stable_component_seed(3, "client", 1) != stable_component_seed(3, "client", 2)

    def test_master_seed_sensitivity(self):
        assert stable_component_seed(3, "x") != stable_component_seed(4, "x")

    def test_none_master_seed(self):
        assert isinstance(stable_component_seed(None, "x"), int)

    def test_in_valid_range(self):
        value = stable_component_seed(123, "anything", 42, "deep")
        assert 0 <= value < 2**31 - 1
