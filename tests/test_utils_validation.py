"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_matrix,
    ensure_vector,
    require,
    validate_byzantine_bound,
    validate_same_dimension,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestEnsureVector:
    def test_list_converted(self):
        out = ensure_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_scalar_becomes_length_one(self):
        assert ensure_vector(5.0).shape == (1,)

    def test_matrix_rejected(self):
        with pytest.raises(ValueError):
            ensure_vector(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ensure_vector(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ensure_vector([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            ensure_vector([np.inf, 0.0])


class TestEnsureMatrix:
    def test_list_of_vectors(self):
        out = ensure_matrix([[1, 2], [3, 4], [5, 6]])
        assert out.shape == (3, 2)

    def test_single_vector_becomes_row(self):
        assert ensure_matrix(np.array([1.0, 2.0, 3.0])).shape == (1, 3)

    def test_min_rows_enforced(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.zeros((2, 3)), min_rows=3)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            ensure_matrix([])

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.zeros((2, 2, 2)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.array([[np.nan, 1.0]]))

    def test_nan_allowed_when_requested(self):
        out = ensure_matrix(np.array([[np.nan, 1.0]]), allow_non_finite=True)
        assert np.isnan(out[0, 0])

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.zeros((3, 0)))

    def test_ragged_rows_rejected(self):
        with pytest.raises(Exception):
            ensure_matrix([[1.0, 2.0], [1.0]])


class TestValidateByzantineBound:
    def test_valid(self):
        validate_byzantine_bound(10, 3)

    def test_boundary_rejected(self):
        # t = n/3 exactly violates the strict inequality.
        with pytest.raises(ValueError):
            validate_byzantine_bound(9, 3)

    def test_zero_t_always_valid(self):
        validate_byzantine_bound(1, 0)

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            validate_byzantine_bound(10, -1)

    def test_non_positive_n_rejected(self):
        with pytest.raises(ValueError):
            validate_byzantine_bound(0, 0)

    def test_custom_divisor(self):
        validate_byzantine_bound(10, 1, resilience_divisor=5)
        with pytest.raises(ValueError):
            validate_byzantine_bound(10, 2, resilience_divisor=5)

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            validate_byzantine_bound(10, 1, resilience_divisor=0)


class TestValidateSameDimension:
    def test_consistent(self):
        assert validate_same_dimension([np.zeros(3), np.ones(3)]) == 3

    def test_inconsistent(self):
        with pytest.raises(ValueError):
            validate_same_dimension([np.zeros(3), np.zeros(4)])

    def test_empty(self):
        with pytest.raises(ValueError):
            validate_same_dimension([])
